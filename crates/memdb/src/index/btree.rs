//! B+tree secondary index (non-clustered: key → rid, like the paper's
//! `create index on R.a2` for the indexed range selection).
//!
//! Nodes are 8 KB blocks in the index arena. Leaves hold `(i32 key, u64 rid)`
//! entries sorted by key (duplicates allowed — `a2` has ~30 duplicates per
//! value at paper scale) and are chained left-to-right for range scans.
//! Interior nodes hold separator keys and child pointers.
//!
//! Structure operations are host-logic over arena bytes; *instrumented*
//! traversal (the loads a real traversal would issue, with pointer-chase
//! dependence) is performed by the executor cursors in `crate::exec`, which
//! use the raw node accessors exposed here.

use crate::arena::SimArena;

/// Node size in bytes (one page).
pub const NODE_SIZE: u64 = 8192;
/// Node header: `[is_leaf: i32][n: i32][next: u64][first_child: u64]`.
pub const NODE_HDR: u64 = 24;

/// Entries per leaf: key (4) + rid (8).
pub const LEAF_CAP: u32 = ((NODE_SIZE - NODE_HDR) / 12) as u32;
/// Keys per interior node: key (4) + child (8), one extra child in header.
pub const INT_CAP: u32 = ((NODE_SIZE - NODE_HDR) / 12) as u32;

// Header field offsets.
const OFF_IS_LEAF: u64 = 0;
const OFF_N: u64 = 4;
const OFF_NEXT: u64 = 8;
const OFF_FIRST_CHILD: u64 = 16;

/// A B+tree over `(i32, u64)` entries stored in a [`SimArena`].
#[derive(Debug, Clone)]
pub struct BTree {
    /// Simulated address of the root node.
    pub root: u64,
    /// Tree height (1 = root is a leaf).
    pub height: u32,
    /// Total entries.
    pub n_entries: u64,
}

/// Simulated address of leaf key slot `i`.
#[inline]
pub fn leaf_key_addr(node: u64, i: u32) -> u64 {
    node + NODE_HDR + 4 * i as u64
}

/// Simulated address of leaf value (rid) slot `i`.
#[inline]
pub fn leaf_val_addr(node: u64, i: u32) -> u64 {
    node + NODE_HDR + 4 * LEAF_CAP as u64 + 8 * i as u64
}

/// Simulated address of interior key slot `i`.
#[inline]
pub fn int_key_addr(node: u64, i: u32) -> u64 {
    node + NODE_HDR + 4 * i as u64
}

/// Simulated address of interior child pointer `i` (0..=n).
#[inline]
pub fn int_child_addr(node: u64, i: u32) -> u64 {
    if i == 0 {
        node + OFF_FIRST_CHILD
    } else {
        node + NODE_HDR + 4 * INT_CAP as u64 + 8 * (i as u64 - 1)
    }
}

/// Reads the `is_leaf` flag.
#[inline]
pub fn node_is_leaf(arena: &SimArena, node: u64) -> bool {
    arena.read_i32(node + OFF_IS_LEAF) != 0
}

/// Reads the entry/key count.
#[inline]
pub fn node_n(arena: &SimArena, node: u64) -> u32 {
    arena.read_i32(node + OFF_N) as u32
}

/// Reads the next-leaf pointer (0 = none).
#[inline]
pub fn leaf_next(arena: &SimArena, node: u64) -> u64 {
    arena.read_u64(node + OFF_NEXT)
}

fn set_n(arena: &mut SimArena, node: u64, n: u32) {
    arena.write_i32(node + OFF_N, n as i32);
}

fn new_node(arena: &mut SimArena, is_leaf: bool) -> u64 {
    let addr = arena.alloc(NODE_SIZE, NODE_SIZE);
    arena.write_i32(addr + OFF_IS_LEAF, is_leaf as i32);
    arena.write_i32(addr + OFF_N, 0);
    arena.write_u64(addr + OFF_NEXT, 0);
    arena.write_u64(addr + OFF_FIRST_CHILD, 0);
    addr
}

impl BTree {
    /// Creates an empty tree (a single empty leaf).
    pub fn new(arena: &mut SimArena) -> Self {
        let root = new_node(arena, true);
        BTree {
            root,
            height: 1,
            n_entries: 0,
        }
    }

    /// Inserts `(key, value)`; duplicates are kept (inserted after existing
    /// equal keys). Uninstrumented — index builds happen before measurement,
    /// as in the paper.
    pub fn insert(&mut self, arena: &mut SimArena, key: i32, value: u64) {
        if let Some((sep, right)) = Self::insert_rec(arena, self.root, key, value) {
            let new_root = new_node(arena, false);
            arena.write_u64(new_root + OFF_FIRST_CHILD, self.root);
            arena.write_i32(int_key_addr(new_root, 0), sep);
            arena.write_u64(int_child_addr(new_root, 1), right);
            set_n(arena, new_root, 1);
            self.root = new_root;
            self.height += 1;
        }
        self.n_entries += 1;
    }

    fn insert_rec(arena: &mut SimArena, node: u64, key: i32, value: u64) -> Option<(i32, u64)> {
        if node_is_leaf(arena, node) {
            return Self::insert_leaf(arena, node, key, value);
        }
        let n = node_n(arena, node);
        // Find child: first key > search key descends left of it.
        let mut lo = 0u32;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if arena.read_i32(int_key_addr(node, mid)) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let child = arena.read_u64(int_child_addr(node, lo));
        let split = Self::insert_rec(arena, child, key, value)?;
        Self::apply_interior(arena, node, lo, split)
    }

    /// Inserts `(sep, right)` at child position `pos`; splits if full.
    fn apply_interior(
        arena: &mut SimArena,
        node: u64,
        pos: u32,
        (sep, right): (i32, u64),
    ) -> Option<(i32, u64)> {
        let n = node_n(arena, node);
        if n < INT_CAP {
            Self::shift_interior(arena, node, pos, n, sep, right);
            set_n(arena, node, n + 1);
            return None;
        }
        // Split: move upper half to a new node; middle key moves up.
        let mid = n / 2;
        let up_key = arena.read_i32(int_key_addr(node, mid));
        let new = new_node(arena, false);
        let moved = n - mid - 1;
        let first_child = arena.read_u64(int_child_addr(node, mid + 1));
        arena.write_u64(new + OFF_FIRST_CHILD, first_child);
        for i in 0..moved {
            let k = arena.read_i32(int_key_addr(node, mid + 1 + i));
            let c = arena.read_u64(int_child_addr(node, mid + 2 + i));
            arena.write_i32(int_key_addr(new, i), k);
            arena.write_u64(int_child_addr(new, i + 1), c);
        }
        set_n(arena, new, moved);
        set_n(arena, node, mid);
        // Insert the pending separator into the proper half.
        if pos <= mid {
            let nn = node_n(arena, node);
            Self::shift_interior(arena, node, pos, nn, sep, right);
            set_n(arena, node, nn + 1);
        } else {
            let p = pos - mid - 1;
            let nn = node_n(arena, new);
            Self::shift_interior(arena, new, p, nn, sep, right);
            set_n(arena, new, nn + 1);
        }
        Some((up_key, new))
    }

    fn shift_interior(arena: &mut SimArena, node: u64, pos: u32, n: u32, sep: i32, right: u64) {
        let mut i = n;
        while i > pos {
            let k = arena.read_i32(int_key_addr(node, i - 1));
            let c = arena.read_u64(int_child_addr(node, i));
            arena.write_i32(int_key_addr(node, i), k);
            arena.write_u64(int_child_addr(node, i + 1), c);
            i -= 1;
        }
        arena.write_i32(int_key_addr(node, pos), sep);
        arena.write_u64(int_child_addr(node, pos + 1), right);
    }

    fn insert_leaf(arena: &mut SimArena, node: u64, key: i32, value: u64) -> Option<(i32, u64)> {
        let n = node_n(arena, node);
        // upper_bound: insert after equal keys.
        let mut lo = 0u32;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if arena.read_i32(leaf_key_addr(node, mid)) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if n < LEAF_CAP {
            Self::shift_leaf(arena, node, lo, n, key, value);
            set_n(arena, node, n + 1);
            return None;
        }
        // Split the leaf.
        let mid = n / 2;
        let new = new_node(arena, true);
        let moved = n - mid;
        for i in 0..moved {
            let k = arena.read_i32(leaf_key_addr(node, mid + i));
            let v = arena.read_u64(leaf_val_addr(node, mid + i));
            arena.write_i32(leaf_key_addr(new, i), k);
            arena.write_u64(leaf_val_addr(new, i), v);
        }
        set_n(arena, new, moved);
        set_n(arena, node, mid);
        let old_next = arena.read_u64(node + OFF_NEXT);
        arena.write_u64(new + OFF_NEXT, old_next);
        arena.write_u64(node + OFF_NEXT, new);
        let sep = arena.read_i32(leaf_key_addr(new, 0));
        if key < sep {
            let nn = node_n(arena, node);
            Self::shift_leaf(arena, node, lo.min(nn), nn, key, value);
            set_n(arena, node, nn + 1);
        } else {
            let nn = node_n(arena, new);
            let mut lo2 = 0u32;
            let mut hi2 = nn;
            while lo2 < hi2 {
                let m = (lo2 + hi2) / 2;
                if arena.read_i32(leaf_key_addr(new, m)) <= key {
                    lo2 = m + 1;
                } else {
                    hi2 = m;
                }
            }
            Self::shift_leaf(arena, new, lo2, nn, key, value);
            set_n(arena, new, nn + 1);
        }
        Some((sep, new))
    }

    fn shift_leaf(arena: &mut SimArena, node: u64, pos: u32, n: u32, key: i32, value: u64) {
        let mut i = n;
        while i > pos {
            let k = arena.read_i32(leaf_key_addr(node, i - 1));
            let v = arena.read_u64(leaf_val_addr(node, i - 1));
            arena.write_i32(leaf_key_addr(node, i), k);
            arena.write_u64(leaf_val_addr(node, i), v);
            i -= 1;
        }
        arena.write_i32(leaf_key_addr(node, pos), key);
        arena.write_u64(leaf_val_addr(node, pos), value);
    }

    /// Host-side (uninstrumented) descent: returns the path of node
    /// addresses from root to the leaf where `key`'s lower bound lives.
    pub fn descend(&self, arena: &SimArena, key: i32) -> Vec<u64> {
        let mut path = Vec::with_capacity(self.height as usize);
        let mut node = self.root;
        loop {
            path.push(node);
            if node_is_leaf(arena, node) {
                return path;
            }
            let n = node_n(arena, node);
            let mut lo = 0u32;
            let mut hi = n;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if arena.read_i32(int_key_addr(node, mid)) < key {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            node = arena.read_u64(int_child_addr(node, lo));
        }
    }

    /// Position of the first entry with key >= `key` in `leaf`.
    pub fn leaf_lower_bound(arena: &SimArena, leaf: u64, key: i32) -> u32 {
        let n = node_n(arena, leaf);
        let mut lo = 0u32;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if arena.read_i32(leaf_key_addr(leaf, mid)) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Uninstrumented full range collect (testing / verification oracle).
    pub fn collect_range(&self, arena: &SimArena, lo: i32, hi_excl: i32) -> Vec<(i32, u64)> {
        let mut out = Vec::new();
        let path = self.descend(arena, lo);
        let mut leaf = *path.last().expect("path nonempty");
        let mut pos = Self::leaf_lower_bound(arena, leaf, lo);
        loop {
            let n = node_n(arena, leaf);
            while pos < n {
                let k = arena.read_i32(leaf_key_addr(leaf, pos));
                if k >= hi_excl {
                    return out;
                }
                out.push((k, arena.read_u64(leaf_val_addr(leaf, pos))));
                pos += 1;
            }
            leaf = leaf_next(arena, leaf);
            if leaf == 0 {
                return out;
            }
            pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdtg_sim::segment;

    fn arena() -> SimArena {
        SimArena::new(segment::INDEX, 256 << 20)
    }

    #[test]
    fn sorted_insert_and_range_scan() {
        let mut a = arena();
        let mut t = BTree::new(&mut a);
        for k in 0..5000 {
            t.insert(&mut a, k, k as u64 * 10);
        }
        assert_eq!(t.n_entries, 5000);
        let r = t.collect_range(&a, 100, 200);
        assert_eq!(r.len(), 100);
        assert_eq!(r[0], (100, 1000));
        assert_eq!(r[99], (199, 1990));
    }

    #[test]
    fn reverse_and_shuffled_inserts_stay_sorted() {
        let mut a = arena();
        let mut t = BTree::new(&mut a);
        // Deterministic shuffle via multiplicative stepping.
        let n = 20_000u64;
        for i in 0..n {
            let k = ((i * 48271) % n) as i32;
            t.insert(&mut a, k, k as u64);
        }
        let all = t.collect_range(&a, i32::MIN, i32::MAX);
        assert_eq!(all.len(), n as usize);
        for w in all.windows(2) {
            assert!(w[0].0 <= w[1].0, "keys must be sorted");
        }
        assert!(t.height >= 2, "20k entries cannot fit one leaf");
    }

    #[test]
    fn duplicates_are_all_retained() {
        let mut a = arena();
        let mut t = BTree::new(&mut a);
        // 30 duplicates per key, like a2 at paper scale (1.2M / 40k).
        for k in 0..500 {
            for d in 0..30u64 {
                t.insert(&mut a, k, (k as u64) << 8 | d);
            }
        }
        let r = t.collect_range(&a, 100, 101);
        assert_eq!(r.len(), 30);
        assert!(r.iter().all(|(k, _)| *k == 100));
    }

    #[test]
    fn range_bounds_are_half_open() {
        let mut a = arena();
        let mut t = BTree::new(&mut a);
        for k in 0..100 {
            t.insert(&mut a, k * 2, k as u64); // even keys only
        }
        let r = t.collect_range(&a, 10, 20);
        let keys: Vec<i32> = r.iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18]);
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut a = arena();
        let mut t = BTree::new(&mut a);
        for k in 0..200_000 {
            t.insert(&mut a, k, k as u64);
        }
        // 200k entries / 680 per leaf = ~300 leaves; height 2-3.
        assert!(t.height == 2 || t.height == 3, "height {}", t.height);
        let r = t.collect_range(&a, 150_000, 150_010);
        assert_eq!(r.len(), 10);
    }

    #[test]
    fn empty_tree_scans_empty() {
        let mut a = arena();
        let t = BTree::new(&mut a);
        assert!(t.collect_range(&a, i32::MIN, i32::MAX).is_empty());
    }
}

//! Chained-bucket hash table for equijoins (the paper's sequential join runs
//! with no indexes, so every system builds a transient join table over S).
//!
//! The bucket directory and entry pool live in the index arena; the executor
//! charges the loads/stores of every probe and chain hop (bucket directories
//! larger than L2 make probes miss — a major source of the join's T_L2D).

use crate::arena::SimArena;

/// Bytes per chain entry: key (4) + pad (4) + payload (8) + next (8).
pub const ENTRY_BYTES: u64 = 24;
const OFF_KEY: u64 = 0;
const OFF_PAYLOAD: u64 = 8;
const OFF_NEXT: u64 = 16;

/// A chained hash table over `(i32 key, u64 payload)`.
#[derive(Debug, Clone)]
pub struct JoinHashTable {
    /// Simulated address of the bucket-head array (u64 per bucket; 0 = empty).
    pub buckets_base: u64,
    /// Number of buckets (power of two).
    pub n_buckets: u64,
    /// Entries inserted.
    pub n_entries: u64,
}

impl JoinHashTable {
    /// Creates a table sized for `expected` entries (load factor ≤ 1).
    pub fn new(arena: &mut SimArena, expected: u64) -> Self {
        let n_buckets = expected.next_power_of_two().max(16);
        let buckets_base = arena.alloc(n_buckets * 8, 64);
        JoinHashTable {
            buckets_base,
            n_buckets,
            n_entries: 0,
        }
    }

    /// Hash of `key` (Fibonacci multiplicative hash, like lean join code).
    #[inline]
    pub fn bucket_of(&self, key: i32) -> u64 {
        let h = (key as u32 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h >> (64 - self.n_buckets.trailing_zeros())
    }

    /// Simulated address of the bucket head for `key`.
    #[inline]
    pub fn bucket_addr(&self, key: i32) -> u64 {
        self.buckets_base + self.bucket_of(key) * 8
    }

    /// Inserts `(key, payload)` at the chain head. Returns
    /// `(bucket_addr, new_entry_addr)` so the executor can charge the
    /// corresponding stores/loads.
    pub fn insert(&mut self, arena: &mut SimArena, key: i32, payload: u64) -> (u64, u64) {
        let bucket = self.bucket_addr(key);
        let entry = arena.alloc(ENTRY_BYTES, 8);
        let old_head = arena.read_u64(bucket);
        arena.write_i32(entry + OFF_KEY, key);
        arena.write_u64(entry + OFF_PAYLOAD, payload);
        arena.write_u64(entry + OFF_NEXT, old_head);
        arena.write_u64(bucket, entry);
        self.n_entries += 1;
        (bucket, entry)
    }

    /// Reads the chain head for `key` (0 = empty chain).
    #[inline]
    pub fn chain_head(&self, arena: &SimArena, key: i32) -> u64 {
        arena.read_u64(self.bucket_addr(key))
    }

    /// Reads one chain entry: `(key, payload, next)`.
    #[inline]
    pub fn entry(&self, arena: &SimArena, entry_addr: u64) -> (i32, u64, u64) {
        (
            arena.read_i32(entry_addr + OFF_KEY),
            arena.read_u64(entry_addr + OFF_PAYLOAD),
            arena.read_u64(entry_addr + OFF_NEXT),
        )
    }

    /// Uninstrumented lookup of all payloads for `key` (testing oracle).
    pub fn get_all(&self, arena: &SimArena, key: i32) -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = self.chain_head(arena, key);
        while cur != 0 {
            let (k, payload, next) = self.entry(arena, cur);
            if k == key {
                out.push(payload);
            }
            cur = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdtg_sim::segment;

    fn arena() -> SimArena {
        SimArena::new(segment::INDEX, 64 << 20)
    }

    #[test]
    fn insert_and_get() {
        let mut a = arena();
        let mut t = JoinHashTable::new(&mut a, 1000);
        for k in 0..1000 {
            t.insert(&mut a, k, (k as u64) * 7);
        }
        for k in 0..1000 {
            assert_eq!(t.get_all(&a, k), vec![(k as u64) * 7]);
        }
        assert!(t.get_all(&a, 5000).is_empty());
    }

    #[test]
    fn duplicate_keys_chain() {
        let mut a = arena();
        let mut t = JoinHashTable::new(&mut a, 64);
        t.insert(&mut a, 42, 1);
        t.insert(&mut a, 42, 2);
        t.insert(&mut a, 42, 3);
        let mut v = t.get_all(&a, 42);
        v.sort_unstable();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn chain_walk_via_raw_accessors() {
        let mut a = arena();
        let mut t = JoinHashTable::new(&mut a, 16);
        let (_, e1) = t.insert(&mut a, 7, 100);
        let (_, e2) = t.insert(&mut a, 7, 200);
        // Head is the most recent insert; its next pointer is the older one.
        assert_eq!(t.chain_head(&a, 7), e2);
        let (k, p, next) = t.entry(&a, e2);
        assert_eq!((k, p, next), (7, 200, e1));
        let (_, p1, next1) = t.entry(&a, e1);
        assert_eq!((p1, next1), (100, 0));
    }

    #[test]
    fn collisions_do_not_lose_entries() {
        let mut a = arena();
        let mut t = JoinHashTable::new(&mut a, 16); // force collisions
        for k in 0..512 {
            t.insert(&mut a, k, k as u64);
        }
        for k in 0..512 {
            assert_eq!(t.get_all(&a, k), vec![k as u64], "key {k}");
        }
    }
}

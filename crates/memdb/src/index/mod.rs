//! Index structures: B+tree secondary indexes and join hash tables.

pub mod btree;
pub mod hash;

//! Engine profiles for the four anonymous commercial systems.
//!
//! The paper characterizes Systems A–D only through counter readings; the
//! profiles below are four differently engineered configurations of the same
//! relational engine whose *implementation choices* are chosen to match the
//! paper's per-system observations. Every constant is a calibration input and
//! is annotated with the observation it targets:
//!
//! * **System A** — lean compiled execution: fewest instructions per record
//!   (Fig 5.3, SRS), smallest T_M and T_B, but the highest resource stalls
//!   (20–40%, Fig 5.1) with T_FU above T_DEP on range selections (Fig 5.5);
//!   its optimizer does not use the non-clustered index for the indexed
//!   range selection (Fig 5.1 middle graph omits A).
//! * **System B** — cache-conscious data access: scan-time prefetch gives an
//!   L2 data miss rate of ≈2% on the sequential selection (§5.2.1), yet
//!   memory stalls jump to ≈50% on the indexed selection where prefetch
//!   cannot help.
//! * **System C** — interpreted generalist: tree-walking expression
//!   evaluator, full record materialization, L2 data miss rates in the
//!   40–90% band (§5.2.1).
//! * **System D** — biggest code footprint: highest instructions/record on
//!   IRS/SJ (Fig 5.3), L1I stalls up to ~40% (§5.2.2); used for the
//!   selectivity sweep of Fig 5.4 (right).

use std::sync::Arc;

use wdtg_sim::{segment, BranchSite, CodeBlock, SegmentAlloc};

/// Which of the paper's four anonymous systems a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemId {
    /// System A.
    A,
    /// System B.
    B,
    /// System C.
    C,
    /// System D.
    D,
}

impl SystemId {
    /// All four systems, in paper order.
    pub const ALL: [SystemId; 4] = [SystemId::A, SystemId::B, SystemId::C, SystemId::D];

    /// Display name ("System A").
    pub fn name(self) -> &'static str {
        match self {
            SystemId::A => "System A",
            SystemId::B => "System B",
            SystemId::C => "System C",
            SystemId::D => "System D",
        }
    }

    /// Short label ("A").
    pub fn letter(self) -> &'static str {
        match self {
            SystemId::A => "A",
            SystemId::B => "B",
            SystemId::C => "C",
            SystemId::D => "D",
        }
    }

    fn ordinal(self) -> u64 {
        match self {
            SystemId::A => 0,
            SystemId::B => 1,
            SystemId::C => 2,
            SystemId::D => 3,
        }
    }
}

/// How the scan produces tuples from records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Materialize {
    /// Read only the referenced fields (lean engines).
    FieldsOnly,
    /// Copy the whole record into a tuple buffer (touches every line of the
    /// record — §5.2.1: T_L2D grows with record size).
    FullRecord,
}

/// Predicate evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// One lean code path per predicate evaluation.
    Compiled,
    /// Tree-walking interpreter: one dispatch block per expression node.
    Interpreted,
}

/// Join algorithm for equijoins without indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Classic hash join (build on the smaller input).
    Hash,
    /// Index nested-loop (requires an index on the inner join column;
    /// planner falls back to hash if absent).
    IndexNestedLoop,
    /// Radix-partitioned hash join: both inputs are scattered into
    /// L2-sized partitions through arena-backed column buffers, then each
    /// partition is joined with a cache-resident hash table
    /// ([`crate::exec::join_partitioned::PartitionedHashJoin`]). Spends
    /// extra partitioning instructions to convert the naive join's random
    /// L2-missing probes into cache hits.
    PartitionedHash,
}

/// The tight-loop code paths of the vectorized execution path.
///
/// Where row mode runs one full operator path per tuple, batch mode charges
/// `dispatch` once per batch plus one of these per-tuple inner-loop blocks
/// scaled by the batch size ([`wdtg_sim::Cpu::exec_block_scaled`] fetches
/// the code once, so consecutive iterations stay I-cache resident — the
/// instruction-footprint collapse batching buys). Paths are derived from the
/// system's row-mode paths with the call prologue/epilogue, iterator
/// dispatch and per-call buffer management stripped, so fat engines (C/D)
/// keep proportionally fatter loops than lean ones (A).
#[derive(Debug, Clone)]
#[allow(missing_docs)] // field names are the documentation
pub struct BatchBlocks {
    /// Per-batch vector dispatch/setup (function call, batch bookkeeping).
    pub dispatch: CodeBlock,
    /// Per-tuple scan inner loop (cursor advance + bounds check).
    pub scan_step: CodeBlock,
    /// Per-tuple predicate inner loop (compiled engines).
    pub pred_step: CodeBlock,
    /// Per-tuple aggregate inner loop.
    pub agg_step: CodeBlock,
    /// Per-tuple hash build/probe inner loop.
    pub hash_step: CodeBlock,
    /// Per-tuple rid-fetch inner loop (index scans).
    pub fetch_step: CodeBlock,
    /// Per-tuple radix-scatter inner loop (partitioned joins): hash the
    /// key, pick the partition, bump its write cursor.
    pub partition_step: CodeBlock,
    /// Per-tuple predicated-selection inner loop (flag materialization +
    /// selection-vector append) — straight-line code with no data-dependent
    /// branch; the cmov itself is charged through
    /// [`wdtg_sim::Cpu::select_run`].
    pub select_step: CodeBlock,
}

/// The instrumented code paths of one engine build.
///
/// Field names mirror the operator code paths of a late-90s commercial
/// executor; per-invocation path lengths differ per system.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // field names are the documentation
pub struct EngineBlocks {
    pub query_setup: CodeBlock,
    pub scan_next: CodeBlock,
    pub scan_page: CodeBlock,
    pub bufpool_get: CodeBlock,
    pub pred_eval: CodeBlock,
    pub pred_node: CodeBlock,
    /// Interpreter handlers, one per node class (comparison / logic /
    /// column / arithmetic+constant). Distinct handler functions give the
    /// tree-walking evaluator its large instruction footprint — the paper's
    /// interpreted engines are exactly the L1I-bound ones (§5.2.2).
    pub pred_handlers: [CodeBlock; 4],
    /// Row-mode predicated qualify tail: the branch-free masking sequence
    /// that replaces the qualify branch under
    /// [`crate::exec::filter::SelectionMode::Predicated`]. Deliberately
    /// straight-line (zero dynamic branches) — eliminating the
    /// data-dependent branch is the whole point; the unconditional extra
    /// instructions are the price the simulator must see.
    pub pred_select: CodeBlock,
    pub agg_step: CodeBlock,
    /// Per-field extraction/conversion path, run once per column during
    /// tuple materialization. This is what makes per-record cost scale with
    /// record width — §5.2.2: "the execution time per record increases by a
    /// factor of 2.5 to 4" from 20- to 200-byte records.
    pub field_extract: CodeBlock,
    pub index_descend: CodeBlock,
    pub index_leaf_next: CodeBlock,
    pub rid_fetch: CodeBlock,
    pub hash_build: CodeBlock,
    pub hash_probe: CodeBlock,
    pub join_match: CodeBlock,
    /// Radix-scatter path of the partitioned join, run once per input row
    /// in row mode: hash the join key, select the partition, append the
    /// row to its column buffers. Deliberately lean — partitioning only
    /// pays off because this path is a fraction of `hash_probe`.
    pub part_scatter: CodeBlock,
    pub update_step: CodeBlock,
    pub insert_step: CodeBlock,
    pub txn_begin_commit: CodeBlock,
    /// Per-hop version-chain walk of the MVCC snapshot read path: load a
    /// superseded row image's header, compare its commit timestamp against
    /// the reader's snapshot, follow the chain pointer. Pointer-chasing by
    /// construction — heavily dependency-bound, the `T_DEP`/`T_L2D` face of
    /// multiversioning.
    pub version_chase: CodeBlock,
    /// Per-operation WAL serialization: format one log record and append it
    /// to the tail. Store-heavy straight-ahead code whose store-buffer
    /// drains show up as resource stalls (§5.5's "significantly higher"
    /// OLTP T_DEP).
    pub wal_append: CodeBlock,
    /// Commit-protocol path: write-set conflict validation, timestamp
    /// assignment, commit-record append and version installation — charged
    /// once per commit/abort on top of the per-op paths.
    pub txn_commit: CodeBlock,
    /// Guardrail checkpoint path: compare the query's cycle/arena counters
    /// against the armed [`crate::ResourceBudget`] limits. Straight-line
    /// and tiny — charged only at batch/partition boundaries, and only when
    /// a limit is set, so the <2% disabled-overhead gate holds by
    /// construction. Also the unit of the shard router's deterministic
    /// backoff spin ([`crate::ShardedDatabase`] retries).
    pub budget_check: CodeBlock,
    /// Vectorized-path blocks (see [`BatchBlocks`]).
    pub batch: BatchBlocks,
    /// The selection predicate's qualify branch (simulated individually;
    /// its behaviour depends on the data, driving Fig 5.4 right).
    pub qualify_site: BranchSite,
    /// The join-match branch.
    pub match_site: BranchSite,
    /// Private scratch address of the tuple buffer (hot, L1-resident).
    pub tuple_buf: u64,
    /// Private scratch address of aggregate accumulators.
    pub agg_buf: u64,
}

/// A complete engine configuration: code paths plus execution strategy.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    /// Which system this profile models.
    pub system: SystemId,
    /// Instrumented code paths (shared with operators).
    pub blocks: Arc<EngineBlocks>,
    /// Predicate evaluation strategy.
    pub eval_mode: EvalMode,
    /// Tuple materialization strategy.
    pub materialize: Materialize,
    /// Scan prefetch look-ahead in cache lines (0 = no prefetching).
    pub prefetch_lines_ahead: u32,
    /// Whether the optimizer uses a non-clustered index for range
    /// selections (System A's does not).
    pub use_index_for_range: bool,
    /// Join algorithm for equijoins.
    pub join_algo: JoinAlgo,
}

/// Per-system tuning constants (path bytes per invocation plus pipeline and
/// branch character). See the module docs for the observation each targets.
struct SysParams {
    // path bytes per invocation
    setup: u32,
    scan_next: u32,
    scan_page: u32,
    bufpool_get: u32,
    pred_eval: u32,
    pred_node: u32,
    agg_step: u32,
    field_extract: u32,
    index_descend: u32,
    index_leaf_next: u32,
    rid_fetch: u32,
    hash_build: u32,
    hash_probe: u32,
    join_match: u32,
    part_scatter: u32,
    update_step: u32,
    insert_step: u32,
    txn: u32,
    version_chase: u32,
    wal_append: u32,
    txn_commit: u32,
    // pipeline character
    dep_frac: f64,
    fu_frac: f64,
    // branch character
    branch_density: f64, // dynamic branches per x86 instruction
    dyn_bias: f64,       // predictor accuracy on BTB hit
    static_acc: f64,     // static rule accuracy on BTB miss
    agg_bias: f64,       // aggregate path is branchier numeric code
}

fn params(sys: SystemId) -> SysParams {
    // Path lengths target Fig 5.3's per-record instruction counts (SRS:
    // A lowest at ~900, D highest at ~3800; instr ≈ path/3.5). Footprints
    // are what drive T_L1I: per-record extents (1.5× the hot path, plus the
    // aggregate path at higher selectivities, page-boundary code and the NT
    // kernel) stay under the 16 KB L1I for A, sit at the edge for B, and
    // exceed it for C and D — reproducing "T_L1I insignificant only for
    // System A on SRS; up to 40% for others" (§5.2.2).
    //
    // Branch accuracies target Fig 5.4: with the BTB missing ~half the time
    // (hot sites ≳ 512), net misprediction rates land at ~3% (A) to ~8%
    // (C/D), which at ~20% branch density yields the paper's 10-20% T_B
    // share band.
    match sys {
        // Fewest instructions/record; FU-bound (Fig 5.5: only A has
        // T_FU > T_DEP on range selections); well-predicted lean code.
        SystemId::A => SysParams {
            setup: 26_000,
            scan_next: 1_800,
            scan_page: 1_400,
            bufpool_get: 600,
            pred_eval: 900,
            pred_node: 450,
            agg_step: 2_400,
            field_extract: 80,
            index_descend: 900,
            index_leaf_next: 500,
            rid_fetch: 1_500,
            hash_build: 1_400,
            hash_probe: 1_100,
            join_match: 800,
            part_scatter: 260,
            update_step: 6_000,
            insert_step: 8_000,
            txn: 140_000,
            version_chase: 700,
            wal_append: 1_200,
            txn_commit: 3_000,
            dep_frac: 0.30,
            fu_frac: 0.48,
            branch_density: 0.15,
            dyn_bias: 0.985,
            static_acc: 0.93,
            agg_bias: 0.97,
        },
        // Cache-conscious data access; mid-size footprint at the L1I edge;
        // dependency-bound like most engines.
        SystemId::B => SysParams {
            setup: 34_000,
            scan_next: 5_200,
            scan_page: 2_600,
            bufpool_get: 1_400,
            pred_eval: 2_800,
            pred_node: 600,
            agg_step: 7_600,
            field_extract: 220,
            index_descend: 1_800,
            index_leaf_next: 1_000,
            rid_fetch: 4_500,
            hash_build: 2_000,
            hash_probe: 1_600,
            join_match: 1_200,
            part_scatter: 340,
            update_step: 8_000,
            insert_step: 10_000,
            txn: 170_000,
            version_chase: 1_100,
            wal_append: 1_600,
            txn_commit: 4_000,
            dep_frac: 0.44,
            fu_frac: 0.24,
            branch_density: 0.19,
            dyn_bias: 0.978,
            static_acc: 0.91,
            agg_bias: 0.90,
        },
        // Interpreted; fat paths well past the L1I capacity; branchy
        // dispatch.
        SystemId::C => SysParams {
            setup: 40_000,
            scan_next: 3_600,
            scan_page: 2_600,
            bufpool_get: 1_800,
            pred_eval: 2_600, // used only if a caller forces compiled mode
            pred_node: 700,
            agg_step: 5_600,
            field_extract: 300,
            index_descend: 2_200,
            index_leaf_next: 1_300,
            rid_fetch: 5_600,
            hash_build: 2_400,
            hash_probe: 2_000,
            join_match: 1_500,
            part_scatter: 400,
            update_step: 10_000,
            insert_step: 12_000,
            txn: 190_000,
            version_chase: 1_400,
            wal_append: 2_000,
            txn_commit: 5_000,
            dep_frac: 0.50,
            fu_frac: 0.26,
            branch_density: 0.19,
            dyn_bias: 0.975,
            static_acc: 0.92,
            agg_bias: 0.87,
        },
        // Largest footprint of all (L1I-bound), most instructions on
        // IRS/SJ (Fig 5.3).
        SystemId::D => SysParams {
            setup: 48_000,
            scan_next: 4_200,
            scan_page: 3_200,
            bufpool_get: 2_200,
            pred_eval: 3_200,
            pred_node: 850,
            agg_step: 7_000,
            field_extract: 420,
            index_descend: 2_800,
            index_leaf_next: 1_600,
            rid_fetch: 7_000,
            hash_build: 3_200,
            hash_probe: 2_600,
            join_match: 2_000,
            part_scatter: 460,
            update_step: 12_000,
            insert_step: 14_000,
            txn: 210_000,
            version_chase: 1_700,
            wal_append: 2_400,
            txn_commit: 6_000,
            dep_frac: 0.50,
            fu_frac: 0.26,
            branch_density: 0.19,
            dyn_bias: 0.980,
            static_acc: 0.93,
            agg_bias: 0.85,
        },
    }
}

/// Places one block in the engine's code segment. Functions are laid out
/// with a cold-half gap (error handling, rarely taken paths) so hot paths
/// from different operators contend for L1I sets realistically.
fn place(
    alloc: &mut SegmentAlloc,
    name: &'static str,
    path_bytes: u32,
    p: &SysParams,
    private_base: u64,
    private_bytes: u32,
    dyn_bias: f64,
) -> CodeBlock {
    let region = alloc.alloc(path_bytes as u64 * 3 / 2, 64);
    let x86 = (path_bytes as f64 / wdtg_sim::pipeline::BYTES_PER_X86_INSTR).round() as u32;
    let dynamic = ((x86 as f64) * p.branch_density)
        .round()
        .min(u16::MAX as f64) as u16;
    // Within one pass through a long path, executed branch sites are mostly
    // distinct, and successive invocations take different branches, so the
    // static-site population exceeds the per-invocation dynamic count; the
    // BTB's ~50% miss rate (§5.3) emerges from total hot sites vs its 512
    // entries.
    let sites = ((dynamic as f64) * 1.3)
        .ceil()
        .max(1.0)
        .min(u16::MAX as f64) as u16;
    CodeBlock::builder(name, path_bytes)
        .private(private_base, private_bytes)
        .branches(sites, dynamic)
        .taken_frac(0.60)
        .dyn_bias(dyn_bias)
        .static_acc(p.static_acc)
        .dep_frac(p.dep_frac)
        .fu_frac(p.fu_frac)
        .long_instr_frac(0.04)
        .at(region.base)
}

/// Places one batch-mode tight-loop block. Unlike the row-path blocks these
/// are short loops with loop-shaped branch character: a back-edge plus a
/// hoisted bound check per handful of instructions (~5% density, versus
/// 15–19% on the row paths), each overwhelmingly predictable — the trained
/// back-edge mispredicts about once per loop exit, and even the static
/// backward-taken rule gets a 90%-taken edge right. Independent work across
/// lanes keeps dependency pressure low. These accuracies are what make
/// the batch executor's *structural* T_B a sliver, leaving the
/// individually-simulated data-dependent qualify branch as the dominant
/// branch-stall term (§5.3/Fig 5.4, the selection-mode comparison).
fn place_batch(
    alloc: &mut SegmentAlloc,
    name: &'static str,
    path_bytes: u32,
    p: &SysParams,
    private_base: u64,
) -> CodeBlock {
    let region = alloc.alloc(path_bytes as u64 * 3 / 2, 64);
    let x86 = (path_bytes as f64 / wdtg_sim::pipeline::BYTES_PER_X86_INSTR).round() as u32;
    let dynamic = ((x86 as f64) * 0.05).round().max(1.0).min(u16::MAX as f64) as u16;
    CodeBlock::builder(name, path_bytes)
        .private(private_base, 512)
        .branches(dynamic.max(2), dynamic)
        .taken_frac(0.90) // dominated by the loop back-edge
        .dyn_bias(0.999) // trained loop branches mispredict ~at loop exits
        .static_acc(0.98) // backward-taken static rule fits a back-edge
        .dep_frac((p.dep_frac - 0.12).max(0.15)) // lanes are independent
        .fu_frac(p.fu_frac)
        .long_instr_frac(0.02)
        .at(region.base)
}

/// Places one straight-line predication block: flag materialization and
/// masking with **zero** dynamic branches — the code shape compilers emit
/// for branch-free selection. Pipeline character follows the engine but
/// with the dependency pressure of copy-style independent lanes; the cmov
/// serialization itself is charged by [`wdtg_sim::Cpu::select_run`], not
/// here.
fn place_straight(
    alloc: &mut SegmentAlloc,
    name: &'static str,
    path_bytes: u32,
    p: &SysParams,
    private_base: u64,
) -> CodeBlock {
    let region = alloc.alloc(path_bytes as u64 * 3 / 2, 64);
    CodeBlock::builder(name, path_bytes)
        .private(private_base, 256)
        .mem_refs(2)
        .branches(1, 0)
        .dep_frac((p.dep_frac - 0.08).max(0.15))
        .fu_frac(p.fu_frac)
        .long_instr_frac(0.0)
        .at(region.base)
}

impl EngineProfile {
    /// Builds the profile for one of the paper's four systems.
    pub fn system(sys: SystemId) -> EngineProfile {
        let p = params(sys);
        // Each system gets its own code and private segments (the systems
        // were separate installations; each Database owns its own Cpu).
        let mut alloc = SegmentAlloc::new(segment::CODE + sys.ordinal() * 0x0100_0000);
        let private = segment::PRIVATE + sys.ordinal() * 0x10_0000;

        let query_setup = place(
            &mut alloc,
            "query_setup",
            p.setup,
            &p,
            private,
            8192,
            p.dyn_bias,
        );
        let scan_next = place(
            &mut alloc,
            "scan_next",
            p.scan_next,
            &p,
            private,
            2048,
            p.dyn_bias,
        );
        let scan_page = place(
            &mut alloc,
            "scan_page",
            p.scan_page,
            &p,
            private + 2048,
            1024,
            p.dyn_bias,
        );
        let bufpool_get = place(
            &mut alloc,
            "bufpool_get",
            p.bufpool_get,
            &p,
            private + 3072,
            1024,
            p.dyn_bias,
        );
        let pred_eval = place(
            &mut alloc,
            "pred_eval",
            p.pred_eval,
            &p,
            private + 4096,
            512,
            p.dyn_bias,
        );
        // Interpreter dispatch: indirect branches, poorly predicted.
        let pred_node = place(
            &mut alloc,
            "pred_node",
            p.pred_node,
            &p,
            private + 4608,
            512,
            p.dyn_bias - 0.05,
        );
        let pred_handlers = [
            place(
                &mut alloc,
                "pred_op_cmp",
                p.pred_node,
                &p,
                private + 4608,
                512,
                p.dyn_bias - 0.05,
            ),
            place(
                &mut alloc,
                "pred_op_logic",
                p.pred_node,
                &p,
                private + 4608,
                512,
                p.dyn_bias - 0.05,
            ),
            place(
                &mut alloc,
                "pred_op_col",
                p.pred_node,
                &p,
                private + 4608,
                512,
                p.dyn_bias,
            ),
            place(
                &mut alloc,
                "pred_op_arith",
                p.pred_node,
                &p,
                private + 4608,
                512,
                p.dyn_bias - 0.05,
            ),
        ];
        // Predicated qualify tail: a handful of masking instructions per
        // row regardless of engine girth (a cmov sequence is a cmov
        // sequence), with a small per-system flavor for the surrounding
        // result handling.
        let pred_select = place_straight(
            &mut alloc,
            "pred_select",
            24 + p.pred_eval / 64,
            &p,
            private + 24_064,
        );
        // Aggregate: branchy numeric code (drives T_B growth with
        // selectivity, Fig 5.4 right).
        let mut agg_step = place(
            &mut alloc,
            "agg_step",
            p.agg_step,
            &p,
            private + 5120,
            1024,
            p.agg_bias,
        );
        let mut field_extract = place(
            &mut alloc,
            "field_extract",
            p.field_extract,
            &p,
            private + 5632,
            512,
            p.dyn_bias,
        );
        // Bulk field extraction is copy-style code: plenty of independent
        // work, so it is not dependency-bound even in high-dep engines.
        field_extract.dep_frac = (field_extract.dep_frac - 0.14).max(0.20);
        let index_descend = place(
            &mut alloc,
            "index_descend",
            p.index_descend,
            &p,
            private + 6144,
            512,
            p.dyn_bias,
        );
        let index_leaf_next = place(
            &mut alloc,
            "index_leaf_next",
            p.index_leaf_next,
            &p,
            private + 6656,
            512,
            p.dyn_bias,
        );
        let rid_fetch = place(
            &mut alloc,
            "rid_fetch",
            p.rid_fetch,
            &p,
            private + 7168,
            512,
            p.dyn_bias,
        );
        let mut hash_build = place(
            &mut alloc,
            "hash_build",
            p.hash_build,
            &p,
            private + 7680,
            512,
            p.dyn_bias,
        );
        let mut hash_probe = place(
            &mut alloc,
            "hash_probe",
            p.hash_probe,
            &p,
            private + 8192,
            512,
            p.dyn_bias,
        );
        let mut join_match = place(
            &mut alloc,
            "join_match",
            p.join_match,
            &p,
            private + 8704,
            512,
            p.agg_bias,
        );
        // Radix scatter is copy-style code (hash, mask, append): plenty of
        // independent work per row, a well-predicted partition-select
        // branch, so it is neither dependency- nor branch-bound.
        let mut part_scatter = place(
            &mut alloc,
            "part_scatter",
            p.part_scatter,
            &p,
            private + 11_264,
            512,
            p.dyn_bias,
        );
        part_scatter.dep_frac = (part_scatter.dep_frac - 0.14).max(0.20);
        let mut update_step = place(
            &mut alloc,
            "update_step",
            p.update_step,
            &p,
            private + 9216,
            512,
            p.dyn_bias,
        );
        let mut insert_step = place(
            &mut alloc,
            "insert_step",
            p.insert_step,
            &p,
            private + 9728,
            512,
            p.dyn_bias,
        );
        let mut txn_begin_commit = place(
            &mut alloc,
            "txn",
            p.txn,
            &p,
            private + 10240,
            2048,
            p.dyn_bias,
        );
        let mut version_chase = place(
            &mut alloc,
            "version_chase",
            p.version_chase,
            &p,
            private + 25_600,
            512,
            p.dyn_bias,
        );
        // The chain walk is serial pointer-chasing: each hop's address
        // depends on the previous load, so it is the most dependency-bound
        // path in the engine.
        version_chase.dep_frac = (version_chase.dep_frac + 0.20).min(0.9);
        let mut wal_append = place(
            &mut alloc,
            "wal_append",
            p.wal_append,
            &p,
            private + 26_112,
            512,
            p.dyn_bias,
        );
        let mut txn_commit = place(
            &mut alloc,
            "txn_commit",
            p.txn_commit,
            &p,
            private + 26_624,
            1024,
            p.dyn_bias,
        );

        // Join code is chained-pointer work: dependency-bound even in System
        // A ("except for System A when executing range selection queries,
        // dependency stalls are the most important resource stalls", §5.4 —
        // i.e. A's *join* is dependency-bound too).
        if sys == SystemId::A {
            for b in [&mut hash_build, &mut hash_probe, &mut join_match] {
                b.dep_frac = 0.65;
                b.fu_frac = 0.28;
            }
            // A's aggregate is a simple register accumulate: moderate FU
            // pressure, so the join's pointer-chasing dependency stalls
            // dominate its resource stalls (§5.4) while the scan-side FU
            // pressure still dominates on range selections (Fig 5.5).
            agg_step.fu_frac = 0.40;
        }
        // Store-heavy OLTP paths (logging, store-buffer drains) carry extra
        // dependency pressure — part of why TPC-C's resource stalls are
        // "significantly higher" (§5.5).
        for b in [
            &mut update_step,
            &mut insert_step,
            &mut txn_begin_commit,
            &mut wal_append,
            &mut txn_commit,
        ] {
            b.dep_frac = (b.dep_frac + 0.14).min(0.9);
        }

        // Vectorized-path blocks: the row paths with per-call overhead
        // stripped. The divisors target the ~5-10x per-tuple instruction
        // collapse vectorized engines report (MonetDB/X100; Sirin &
        // Ailamaki's OLAP analysis), with floors so no loop models fewer
        // than ~2-3 dozen instructions per tuple. Fat interpreted engines
        // (C/D) keep proportionally fatter loops than lean compiled ones.
        let batch = BatchBlocks {
            dispatch: place_batch(
                &mut alloc,
                "batch_dispatch",
                (p.setup / 40).max(600),
                &p,
                private + 20_480,
            ),
            scan_step: place_batch(
                &mut alloc,
                "batch_scan_step",
                (p.scan_next / 10).max(96),
                &p,
                private + 20_992,
            ),
            pred_step: place_batch(
                &mut alloc,
                "batch_pred_step",
                (p.pred_eval / 8).max(64),
                &p,
                private + 21_504,
            ),
            agg_step: place_batch(
                &mut alloc,
                "batch_agg_step",
                (p.agg_step / 10).max(96),
                &p,
                private + 22_016,
            ),
            hash_step: place_batch(
                &mut alloc,
                "batch_hash_step",
                (p.hash_probe / 6).max(96),
                &p,
                private + 22_528,
            ),
            fetch_step: place_batch(
                &mut alloc,
                "batch_fetch_step",
                (p.rid_fetch / 6).max(128),
                &p,
                private + 23_040,
            ),
            partition_step: place_batch(
                &mut alloc,
                "batch_partition_step",
                (p.part_scatter / 8).max(48),
                &p,
                private + 23_552,
            ),
            select_step: place_straight(
                &mut alloc,
                "batch_select_step",
                16 + p.pred_eval / 160,
                &p,
                private + 24_576,
            ),
        };
        // Guardrail checkpoint: read two counters, compare against two
        // limits — a tiny straight-line path, the same in every engine,
        // charged only when a ResourceBudget limit is armed (so the fault
        // model costs nothing when off, and its overhead is deterministic
        // simulated work when on).
        let budget_check = place_straight(&mut alloc, "budget_check", 40, &p, private + 25_088);

        let qualify_site = BranchSite {
            addr: pred_eval.base + 64,
            backward: false,
        };
        let match_site = BranchSite {
            addr: hash_probe.base + 64,
            backward: false,
        };

        let blocks = Arc::new(EngineBlocks {
            query_setup,
            scan_next,
            scan_page,
            bufpool_get,
            pred_eval,
            pred_node,
            pred_handlers,
            pred_select,
            agg_step,
            field_extract,
            index_descend,
            index_leaf_next,
            rid_fetch,
            hash_build,
            hash_probe,
            join_match,
            part_scatter,
            update_step,
            insert_step,
            txn_begin_commit,
            version_chase,
            wal_append,
            txn_commit,
            budget_check,
            batch,
            qualify_site,
            match_site,
            tuple_buf: private + 12_288,
            agg_buf: private + 16_384,
        });

        match sys {
            SystemId::A => EngineProfile {
                system: sys,
                blocks,
                eval_mode: EvalMode::Compiled,
                materialize: Materialize::FieldsOnly,
                prefetch_lines_ahead: 0,
                use_index_for_range: false, // A did not use the index (§5.1)
                join_algo: JoinAlgo::Hash,
            },
            SystemId::B => EngineProfile {
                system: sys,
                blocks,
                eval_mode: EvalMode::Compiled,
                materialize: Materialize::FullRecord,
                prefetch_lines_ahead: 24, // cache-conscious scan (§5.2.1)
                use_index_for_range: true,
                join_algo: JoinAlgo::Hash,
            },
            SystemId::C => EngineProfile {
                system: sys,
                blocks,
                eval_mode: EvalMode::Interpreted,
                materialize: Materialize::FullRecord,
                prefetch_lines_ahead: 0,
                use_index_for_range: true,
                join_algo: JoinAlgo::Hash,
            },
            SystemId::D => EngineProfile {
                system: sys,
                blocks,
                eval_mode: EvalMode::Interpreted,
                materialize: Materialize::FullRecord,
                prefetch_lines_ahead: 0,
                use_index_for_range: true,
                join_algo: JoinAlgo::Hash,
            },
        }
    }

    /// All four systems' profiles.
    pub fn all_systems() -> Vec<EngineProfile> {
        SystemId::ALL
            .iter()
            .map(|s| EngineProfile::system(*s))
            .collect()
    }

    /// Replaces the shared block set with a private deep copy.
    ///
    /// A cloned profile shares its `Arc<EngineBlocks>`, and code blocks
    /// carry a probe-address rotation counter that is part of the simulated
    /// stream — so two simulated cores sharing one block set would see each
    /// other's rotation advances, making counters depend on core
    /// interleaving (and, under the parallel executor, on the host
    /// schedule). [`crate::Database::shard`] privatizes each shard's blocks
    /// through this so every core's stream is a pure function of its own
    /// work.
    pub fn privatize_blocks(&mut self) {
        self.blocks = Arc::new((*self.blocks).clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_profiles_with_distinct_strategies() {
        let a = EngineProfile::system(SystemId::A);
        let b = EngineProfile::system(SystemId::B);
        let c = EngineProfile::system(SystemId::C);
        let d = EngineProfile::system(SystemId::D);
        assert!(
            !a.use_index_for_range,
            "A's optimizer skips the index (§5.1)"
        );
        assert!(b.use_index_for_range && c.use_index_for_range && d.use_index_for_range);
        assert!(
            b.prefetch_lines_ahead > 0,
            "B is the cache-conscious system"
        );
        assert_eq!(a.eval_mode, EvalMode::Compiled);
        assert_eq!(d.eval_mode, EvalMode::Interpreted);
    }

    #[test]
    fn per_record_instruction_paths_grow_from_a_to_d() {
        // Fig 5.3: SRS instructions/record must rise A < B < C < D. The
        // per-record path is scan + predicate evaluation + field extraction
        // (25 fields at 100-byte records).
        let per_record: Vec<u64> = SystemId::ALL
            .iter()
            .map(|sys| {
                let p = EngineProfile::system(*sys);
                let b = &p.blocks;
                let pred = match p.eval_mode {
                    EvalMode::Compiled => b.pred_eval.path_bytes as u64,
                    EvalMode::Interpreted => {
                        b.pred_node.path_bytes as u64 + 7 * b.pred_handlers[0].path_bytes as u64
                    }
                };
                let fields = match p.materialize {
                    Materialize::FullRecord => 25 * b.field_extract.path_bytes as u64,
                    Materialize::FieldsOnly => 2 * b.field_extract.path_bytes as u64,
                };
                b.scan_next.path_bytes as u64 + pred + fields
            })
            .collect();
        assert!(
            per_record.windows(2).all(|w| w[0] < w[1]),
            "per-record paths must grow A..D: {per_record:?}"
        );
    }

    #[test]
    fn batch_loops_are_far_leaner_than_row_paths() {
        // The vectorized per-tuple loops must collapse the per-tuple path by
        // a large factor for every system.
        for sys in SystemId::ALL {
            let p = EngineProfile::system(sys);
            let b = &p.blocks;
            assert!(
                b.batch.scan_step.path_bytes * 6 <= b.scan_next.path_bytes,
                "{}: batch scan loop not lean enough",
                sys.letter()
            );
            assert!(b.batch.agg_step.path_bytes * 6 <= b.agg_step.path_bytes);
            assert!(b.batch.hash_step.path_bytes * 4 <= b.hash_probe.path_bytes);
        }
    }

    #[test]
    fn partition_scatter_stays_a_fraction_of_the_probe_path() {
        // The partitioned join's economics rest on this: the per-row
        // scatter path must be far leaner than the probe path whose misses
        // it buys away, and its batch loop leaner still — for every system.
        for sys in SystemId::ALL {
            let p = EngineProfile::system(sys);
            let b = &p.blocks;
            assert!(
                b.part_scatter.path_bytes * 4 <= b.hash_probe.path_bytes,
                "{}: part_scatter not lean enough vs hash_probe",
                sys.letter()
            );
            assert!(
                b.batch.partition_step.path_bytes * 4 <= b.part_scatter.path_bytes,
                "{}: batch partition loop not lean enough",
                sys.letter()
            );
        }
    }

    #[test]
    fn predication_blocks_are_lean_and_branch_free() {
        // The predicated qualify tail must be a sliver of the predicate
        // path it rides on, and strictly straight-line: a single structural
        // dynamic branch would reintroduce exactly the stall the mode
        // exists to eliminate.
        for sys in SystemId::ALL {
            let p = EngineProfile::system(sys);
            let b = &p.blocks;
            assert_eq!(
                b.pred_select.dyn_branches,
                0,
                "{}: pred_select must be branch-free",
                sys.letter()
            );
            assert_eq!(
                b.batch.select_step.dyn_branches,
                0,
                "{}: batch select loop must be branch-free",
                sys.letter()
            );
            assert!(
                b.pred_select.path_bytes * 8 <= b.pred_eval.path_bytes,
                "{}: pred_select not lean enough vs pred_eval",
                sys.letter()
            );
            assert!(
                b.batch.select_step.path_bytes <= b.pred_select.path_bytes,
                "{}: batch select loop fatter than the row tail",
                sys.letter()
            );
        }
    }

    #[test]
    fn blocks_do_not_overlap_within_a_system() {
        let p = EngineProfile::system(SystemId::D);
        let b = &p.blocks;
        let mut spans = [
            (b.query_setup.base, b.query_setup.path_bytes),
            (b.scan_next.base, b.scan_next.path_bytes),
            (b.scan_page.base, b.scan_page.path_bytes),
            (b.pred_node.base, b.pred_node.path_bytes),
            (b.agg_step.base, b.agg_step.path_bytes),
            (b.hash_probe.base, b.hash_probe.path_bytes),
        ];
        spans.sort_by_key(|s| s.0);
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 as u64 <= w[1].0, "code blocks overlap");
        }
    }

    #[test]
    fn systems_use_disjoint_code_segments() {
        let a = EngineProfile::system(SystemId::A);
        let b = EngineProfile::system(SystemId::B);
        assert!(b.blocks.query_setup.base >= a.blocks.query_setup.base + 0x0100_0000);
    }
}

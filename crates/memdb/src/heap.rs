//! Slotted heap pages and heap files.
//!
//! Records are fixed-length (integer columns only, like the paper's relation
//! R), stored N-ary (NSM) in 8 KB pages: a 32-byte page header followed by
//! densely packed records. The buffer pool keeps every page memory-resident
//! (§4.2: "the buffer pool size was large enough to fit the datasets for all
//! the queries"), so a page's simulated address is stable for its lifetime.

use std::rc::Rc;

use crate::arena::SimArena;
use crate::error::{DbError, DbResult};

/// Page size in bytes (typical for the era's commercial systems).
pub const PAGE_SIZE: u64 = 8192;
/// Page header size: record count, record size, page id, free-space cursor.
pub const PAGE_HDR: u64 = 32;

/// Byte offset of the record-count field within the page header.
pub const HDR_NRECS: u64 = 0;
/// Byte offset of the record-size field within the page header.
pub const HDR_RECSIZE: u64 = 4;
/// Byte offset of the page-id field within the page header.
pub const HDR_PAGEID: u64 = 8;

/// A record identifier: page number within the heap file plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rid {
    /// Page number within the owning heap file.
    pub page: u32,
    /// Slot within the page.
    pub slot: u32,
}

impl Rid {
    /// Packs the rid into a u64 (for index payloads).
    pub fn pack(self) -> u64 {
        ((self.page as u64) << 32) | self.slot as u64
    }

    /// Unpacks a rid packed with [`Rid::pack`].
    pub fn unpack(v: u64) -> Rid {
        Rid {
            page: (v >> 32) as u32,
            slot: v as u32,
        }
    }
}

/// A heap file: an append-only list of pages holding fixed-length records.
#[derive(Debug, Clone)]
pub struct HeapFile {
    /// Fixed record size in bytes.
    pub record_size: u32,
    /// Records per page.
    pub page_cap: u32,
    /// Simulated base addresses of the pages, in page-number order. `Rc` so
    /// scan operators can hold a cheap snapshot for the duration of a query.
    pub pages: Rc<Vec<u64>>,
    /// Total records.
    pub n_records: u64,
    /// Global page-id of this file's first page (buffer-pool key space).
    pub first_page_id: u64,
}

impl HeapFile {
    /// Creates an empty heap file for `record_size`-byte records.
    /// `first_page_id` is the buffer-pool page id this file's page 0 gets.
    pub fn new(record_size: u32, first_page_id: u64) -> Self {
        assert!(record_size >= 4 && record_size as u64 <= PAGE_SIZE - PAGE_HDR);
        HeapFile {
            record_size,
            page_cap: ((PAGE_SIZE - PAGE_HDR) / record_size as u64) as u32,
            pages: Rc::new(Vec::new()),
            n_records: 0,
            first_page_id,
        }
    }

    /// Number of pages.
    pub fn n_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Global buffer-pool id of page `page_no`.
    pub fn page_id(&self, page_no: u32) -> u64 {
        self.first_page_id + page_no as u64
    }

    /// Simulated address of the page holding `page_no`.
    pub fn page_addr(&self, page_no: u32) -> DbResult<u64> {
        self.pages
            .get(page_no as usize)
            .copied()
            .ok_or(DbError::BadRid)
    }

    /// Simulated address of the record at `rid`.
    pub fn record_addr(&self, rid: Rid) -> DbResult<u64> {
        if rid.slot >= self.page_cap {
            return Err(DbError::BadRid);
        }
        Ok(self.page_addr(rid.page)? + PAGE_HDR + rid.slot as u64 * self.record_size as u64)
    }

    /// Appends a record (raw bytes, uninstrumented — used for bulk loading,
    /// which the paper performs before measurement). Returns its rid.
    pub fn insert_raw(&mut self, arena: &mut SimArena, rec: &[u8]) -> Rid {
        assert_eq!(rec.len(), self.record_size as usize);
        let slot_in_page = (self.n_records % self.page_cap as u64) as u32;
        if slot_in_page == 0 {
            // Start a new page.
            let addr = arena.alloc(PAGE_SIZE, PAGE_SIZE);
            let page_no = self.pages.len() as u32;
            arena.write_i32(addr + HDR_NRECS, 0);
            arena.write_i32(addr + HDR_RECSIZE, self.record_size as i32);
            arena.write_u64(addr + HDR_PAGEID, self.page_id(page_no));
            Rc::make_mut(&mut self.pages).push(addr);
        }
        let page_no = (self.n_records / self.page_cap as u64) as u32;
        let page = self.pages[page_no as usize];
        let rid = Rid {
            page: page_no,
            slot: slot_in_page,
        };
        let addr = page + PAGE_HDR + slot_in_page as u64 * self.record_size as u64;
        arena.write_bytes(addr, rec);
        arena.write_i32(page + HDR_NRECS, slot_in_page as i32 + 1);
        self.n_records += 1;
        rid
    }

    /// Records stored in page `page_no` (raw header read).
    pub fn records_in_page(&self, arena: &SimArena, page_no: u32) -> u32 {
        arena.read_i32(self.pages[page_no as usize] + HDR_NRECS) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdtg_sim::segment;

    fn arena() -> SimArena {
        SimArena::new(segment::HEAP, 64 << 20)
    }

    fn record(size: u32, v: i32) -> Vec<u8> {
        let mut r = vec![0u8; size as usize];
        r[..4].copy_from_slice(&v.to_le_bytes());
        r
    }

    #[test]
    fn page_capacity_matches_paper_layout() {
        // 100-byte records: (8192-32)/100 = 81 records per page.
        let h = HeapFile::new(100, 0);
        assert_eq!(h.page_cap, 81);
    }

    #[test]
    fn insert_and_address_round_trip() {
        let mut a = arena();
        let mut h = HeapFile::new(100, 0);
        let mut rids = Vec::new();
        for i in 0..200 {
            rids.push(h.insert_raw(&mut a, &record(100, i)));
        }
        assert_eq!(h.n_records, 200);
        assert_eq!(h.n_pages(), 3, "81+81+38");
        for (i, rid) in rids.iter().enumerate() {
            let addr = h.record_addr(*rid).unwrap();
            assert_eq!(a.read_i32(addr), i as i32);
        }
        assert_eq!(h.records_in_page(&a, 0), 81);
        assert_eq!(h.records_in_page(&a, 2), 38);
    }

    #[test]
    fn rid_pack_unpack() {
        let rid = Rid {
            page: 12345,
            slot: 67,
        };
        assert_eq!(Rid::unpack(rid.pack()), rid);
    }

    #[test]
    fn bad_rid_is_detected() {
        let mut a = arena();
        let mut h = HeapFile::new(100, 0);
        h.insert_raw(&mut a, &record(100, 1));
        assert!(h.record_addr(Rid { page: 9, slot: 0 }).is_err());
        assert!(h.record_addr(Rid { page: 0, slot: 99 }).is_err());
    }

    #[test]
    fn pages_are_page_aligned_and_disjoint() {
        let mut a = arena();
        let mut h = HeapFile::new(200, 0);
        for i in 0..100 {
            h.insert_raw(&mut a, &record(200, i));
        }
        for w in h.pages.windows(2) {
            assert_eq!(w[0] % PAGE_SIZE, 0);
            assert!(w[1] >= w[0] + PAGE_SIZE);
        }
    }
}

//! Heap pages and heap files, in two on-page layouts.
//!
//! Records are fixed-length (integer columns only, like the paper's relation
//! R) in 8 KB pages. Two page layouts are supported, selected per heap file
//! by [`PageLayout`]; both start with the same 32-byte header and hold the
//! same `page_cap = (8192 − 32) / record_size` records, so a [`Rid`] means
//! the same thing under either layout and only the *placement of bytes
//! within the page* differs.
//!
//! # NSM — the slotted N-ary storage model ([`PageLayout::Nsm`])
//!
//! Whole records are packed densely, one after another — the layout every
//! system the paper measures uses. For 100-byte records (`cap` = 81):
//!
//! ```text
//! byte 0        32        132       232                  8132
//!      +--------+---------+---------+--- ... ---+--------+------+
//!      | header | rec 0   | rec 1   |           | rec 80 | free |
//!      +--------+---------+---------+--- ... ---+--------+------+
//!                \__ a1 a2 a3 ... a25 __/  (fields contiguous per record)
//! ```
//!
//! Field `c` of slot `s` lives at `32 + s·record_size + 4c`: a scan that
//! projects two of 25 columns still drags every record's cache lines through
//! the hierarchy at `record_size` stride.
//!
//! # PAX — partition attributes across ([`PageLayout::Pax`])
//!
//! The cache-conscious layout of Ailamaki et al. (VLDB 2001): the same
//! records, but within each page the values of each attribute are grouped
//! into a per-attribute *minipage*. For 100-byte records (25 columns,
//! `cap` = 81, minipage = 81·4 = 324 bytes):
//!
//! ```text
//! byte 0        32         356        680                 8132
//!      +--------+----------+----------+--- ... ---+-------+------+
//!      | header | minipage | minipage |           | mini- | free |
//!      |        |   a1     |   a2     |           | page  |      |
//!      +--------+----------+----------+--- ... ---+ a25   +------+
//!                \_ a1 of slots 0..81 _/ (fields contiguous per column)
//! ```
//!
//! Field `c` of slot `s` lives at `32 + c·(cap·4) + 4s`: a scan touching
//! `k` of `n` columns pulls only the cache lines of those `k` minipages
//! (4-byte stride within a minipage), which is the attack on the paper's
//! dominant stall component `T_L2D` — same bytes per *record*, a fraction of
//! the cache lines per *scan*. Full-row access gathers one 4-byte field from
//! each of the `n` minipages, touching the same lines NSM would, so
//! OLTP-style whole-record operations stay near parity.
//!
//! The buffer pool keeps every page memory-resident (§4.2: "the buffer pool
//! size was large enough to fit the datasets for all the queries"), so a
//! page's simulated address is stable for its lifetime.

use std::sync::Arc;

use crate::arena::SimArena;
use crate::error::{DbError, DbResult};

/// How records are laid out within a page (see the module docs for byte
/// diagrams). The layout is fixed per heap file at creation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageLayout {
    /// Slotted N-ary storage model: whole records stored contiguously (the
    /// layout of every system the paper measures).
    #[default]
    Nsm,
    /// Partition Attributes Across: per-attribute minipages within each
    /// page, so narrow projections touch only the projected columns' lines.
    Pax,
}

impl PageLayout {
    /// Both layouts, NSM first.
    pub const ALL: [PageLayout; 2] = [PageLayout::Nsm, PageLayout::Pax];

    /// Short display label ("NSM" / "PAX").
    pub fn label(self) -> &'static str {
        match self {
            PageLayout::Nsm => "NSM",
            PageLayout::Pax => "PAX",
        }
    }
}

/// Page size in bytes (typical for the era's commercial systems).
pub const PAGE_SIZE: u64 = 8192;
/// Page header size: record count, record size, page id, free-space cursor.
pub const PAGE_HDR: u64 = 32;

/// Byte offset of the record-count field within the page header.
pub const HDR_NRECS: u64 = 0;
/// Byte offset of the record-size field within the page header.
pub const HDR_RECSIZE: u64 = 4;
/// Byte offset of the page-id field within the page header.
pub const HDR_PAGEID: u64 = 8;

/// A record identifier: page number within the heap file plus slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rid {
    /// Page number within the owning heap file.
    pub page: u32,
    /// Slot within the page.
    pub slot: u32,
}

impl Rid {
    /// Packs the rid into a u64 (for index payloads).
    pub fn pack(self) -> u64 {
        ((self.page as u64) << 32) | self.slot as u64
    }

    /// Unpacks a rid packed with [`Rid::pack`].
    pub fn unpack(v: u64) -> Rid {
        Rid {
            page: (v >> 32) as u32,
            slot: v as u32,
        }
    }
}

/// A heap file: an append-only list of pages holding fixed-length records,
/// all laid out per the file's [`PageLayout`].
#[derive(Debug, Clone)]
pub struct HeapFile {
    /// Fixed record size in bytes.
    pub record_size: u32,
    /// Records per page (identical under both layouts, so rids are
    /// layout-independent).
    pub page_cap: u32,
    /// On-page placement of record bytes.
    pub layout: PageLayout,
    /// Simulated base addresses of the pages, in page-number order. `Arc` so
    /// scan operators can hold a cheap snapshot for the duration of a query.
    pub pages: Arc<Vec<u64>>,
    /// Total records.
    pub n_records: u64,
    /// Global page-id of this file's first page (buffer-pool key space).
    pub first_page_id: u64,
}

impl HeapFile {
    /// Creates an empty NSM heap file for `record_size`-byte records.
    /// `first_page_id` is the buffer-pool page id this file's page 0 gets.
    pub fn new(record_size: u32, first_page_id: u64) -> Self {
        Self::with_layout(record_size, first_page_id, PageLayout::Nsm)
    }

    /// Creates an empty heap file with an explicit page layout. PAX requires
    /// records to be whole 4-byte fields (all schemas in this workspace are).
    pub fn with_layout(record_size: u32, first_page_id: u64, layout: PageLayout) -> Self {
        assert!(record_size >= 4 && record_size as u64 <= PAGE_SIZE - PAGE_HDR);
        assert!(
            record_size.is_multiple_of(4),
            "records are whole 4-byte fields"
        );
        HeapFile {
            record_size,
            page_cap: ((PAGE_SIZE - PAGE_HDR) / record_size as u64) as u32,
            layout,
            pages: Arc::new(Vec::new()),
            n_records: 0,
            first_page_id,
        }
    }

    /// Number of 4-byte fields per record.
    pub fn n_fields(&self) -> u32 {
        self.record_size / 4
    }

    /// Byte distance between the same field of two consecutive slots:
    /// `record_size` under NSM, 4 within a PAX minipage.
    pub fn field_stride(&self) -> u64 {
        match self.layout {
            PageLayout::Nsm => self.record_size as u64,
            PageLayout::Pax => 4,
        }
    }

    /// Simulated address of field `col` of `slot` within the page at
    /// `page_addr` (no bounds checks — the scan hot path).
    #[inline]
    pub fn field_addr_at(&self, page_addr: u64, slot: u32, col: usize) -> u64 {
        match self.layout {
            PageLayout::Nsm => {
                page_addr + PAGE_HDR + slot as u64 * self.record_size as u64 + col as u64 * 4
            }
            PageLayout::Pax => {
                page_addr + PAGE_HDR + col as u64 * self.minipage_bytes() + slot as u64 * 4
            }
        }
    }

    /// Bytes one PAX minipage occupies (`page_cap × 4`).
    #[inline]
    pub fn minipage_bytes(&self) -> u64 {
        self.page_cap as u64 * 4
    }

    /// Start address of column `col`'s PAX minipage within the page at
    /// `page_addr` (meaningful under [`PageLayout::Pax`] only).
    #[inline]
    pub fn minipage_base(&self, page_addr: u64, col: usize) -> u64 {
        page_addr + PAGE_HDR + col as u64 * self.minipage_bytes()
    }

    /// Bounds-checked simulated address of field `col` of the record at
    /// `rid`.
    pub fn field_addr(&self, rid: Rid, col: usize) -> DbResult<u64> {
        if rid.slot >= self.page_cap || col >= self.n_fields() as usize {
            return Err(DbError::BadRid);
        }
        Ok(self.field_addr_at(self.page_addr(rid.page)?, rid.slot, col))
    }

    /// Number of pages.
    pub fn n_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Global buffer-pool id of page `page_no`.
    pub fn page_id(&self, page_no: u32) -> u64 {
        self.first_page_id + page_no as u64
    }

    /// Simulated address of the page holding `page_no`.
    pub fn page_addr(&self, page_no: u32) -> DbResult<u64> {
        self.pages
            .get(page_no as usize)
            .copied()
            .ok_or(DbError::BadRid)
    }

    /// Simulated address of the first field of the record at `rid`. Under
    /// NSM the whole record is contiguous from here; under PAX this is the
    /// record's entry in minipage 0 and the remaining fields live at
    /// [`HeapFile::field_addr`] of the other columns.
    pub fn record_addr(&self, rid: Rid) -> DbResult<u64> {
        self.field_addr(rid, 0)
    }

    /// Appends a record (raw bytes, uninstrumented — used for bulk loading,
    /// which the paper performs before measurement). Returns its rid, or a
    /// typed error for a wrong-sized record / an exhausted heap arena.
    pub fn insert_raw(&mut self, arena: &mut SimArena, rec: &[u8]) -> DbResult<Rid> {
        if rec.len() != self.record_size as usize {
            return Err(DbError::RecordSizeMismatch {
                expected: self.record_size,
                got: rec.len(),
            });
        }
        let slot_in_page = (self.n_records % self.page_cap as u64) as u32;
        if slot_in_page == 0 {
            // Start a new page.
            let addr = arena
                .try_alloc(PAGE_SIZE, PAGE_SIZE)
                .ok_or(DbError::ArenaExhausted {
                    requested: PAGE_SIZE,
                    used: arena.used(),
                    capacity: arena.region().len,
                })?;
            let page_no = self.pages.len() as u32;
            arena.write_i32(addr + HDR_NRECS, 0);
            arena.write_i32(addr + HDR_RECSIZE, self.record_size as i32);
            arena.write_u64(addr + HDR_PAGEID, self.page_id(page_no));
            Arc::make_mut(&mut self.pages).push(addr);
        }
        let page_no = (self.n_records / self.page_cap as u64) as u32;
        let page = self.pages[page_no as usize];
        let rid = Rid {
            page: page_no,
            slot: slot_in_page,
        };
        match self.layout {
            PageLayout::Nsm => {
                let addr = page + PAGE_HDR + slot_in_page as u64 * self.record_size as u64;
                arena.write_bytes(addr, rec);
            }
            PageLayout::Pax => {
                // Scatter one 4-byte field into each minipage.
                for (c, field) in rec.chunks_exact(4).enumerate() {
                    arena.write_bytes(self.field_addr_at(page, slot_in_page, c), field);
                }
            }
        }
        arena.write_i32(page + HDR_NRECS, slot_in_page as i32 + 1);
        self.n_records += 1;
        Ok(rid)
    }

    /// Undoes the most recent [`HeapFile::insert_raw`]: zeroes the record's
    /// bytes and winds the page header / record count back, making an
    /// aborted insert invisible to every scan path. The bump arena cannot
    /// free a page that the undone insert opened — such a page stays
    /// allocated with `HDR_NRECS == 0`, which scans already skip. This is
    /// the all-or-nothing backstop for `insert_row`: if index maintenance
    /// fails after the heap append, the record must not survive un-indexed.
    pub(crate) fn unappend(&mut self, arena: &mut SimArena) {
        assert!(self.n_records > 0, "unappend on an empty heap");
        self.n_records -= 1;
        let slot_in_page = (self.n_records % self.page_cap as u64) as u32;
        let page_no = (self.n_records / self.page_cap as u64) as u32;
        let page = self.pages[page_no as usize];
        let zeros = vec![0u8; self.record_size as usize];
        match self.layout {
            PageLayout::Nsm => {
                let addr = page + PAGE_HDR + slot_in_page as u64 * self.record_size as u64;
                arena.write_bytes(addr, &zeros);
            }
            PageLayout::Pax => {
                for c in 0..(self.n_fields() as usize) {
                    arena.write_bytes(self.field_addr_at(page, slot_in_page, c), &zeros[..4]);
                }
            }
        }
        arena.write_i32(page + HDR_NRECS, slot_in_page as i32);
    }

    /// Records stored in page `page_no` (raw header read).
    pub fn records_in_page(&self, arena: &SimArena, page_no: u32) -> u32 {
        arena.read_i32(self.pages[page_no as usize] + HDR_NRECS) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdtg_sim::segment;

    fn arena() -> SimArena {
        SimArena::new(segment::HEAP, 64 << 20)
    }

    fn record(size: u32, v: i32) -> Vec<u8> {
        let mut r = vec![0u8; size as usize];
        r[..4].copy_from_slice(&v.to_le_bytes());
        r
    }

    #[test]
    fn page_capacity_matches_paper_layout() {
        // 100-byte records: (8192-32)/100 = 81 records per page.
        let h = HeapFile::new(100, 0);
        assert_eq!(h.page_cap, 81);
    }

    #[test]
    fn insert_and_address_round_trip() {
        let mut a = arena();
        let mut h = HeapFile::new(100, 0);
        let mut rids = Vec::new();
        for i in 0..200 {
            rids.push(h.insert_raw(&mut a, &record(100, i)).unwrap());
        }
        assert_eq!(h.n_records, 200);
        assert_eq!(h.n_pages(), 3, "81+81+38");
        for (i, rid) in rids.iter().enumerate() {
            let addr = h.record_addr(*rid).unwrap();
            assert_eq!(a.read_i32(addr), i as i32);
        }
        assert_eq!(h.records_in_page(&a, 0), 81);
        assert_eq!(h.records_in_page(&a, 2), 38);
    }

    #[test]
    fn rid_pack_unpack() {
        let rid = Rid {
            page: 12345,
            slot: 67,
        };
        assert_eq!(Rid::unpack(rid.pack()), rid);
    }

    #[test]
    fn bad_rid_is_detected() {
        let mut a = arena();
        let mut h = HeapFile::new(100, 0);
        h.insert_raw(&mut a, &record(100, 1)).unwrap();
        assert!(h.record_addr(Rid { page: 9, slot: 0 }).is_err());
        assert!(h.record_addr(Rid { page: 0, slot: 99 }).is_err());
    }

    #[test]
    fn pax_capacity_and_rids_match_nsm() {
        // Rids are layout-independent: same cap, same page count.
        let nsm = HeapFile::new(100, 0);
        let pax = HeapFile::with_layout(100, 0, PageLayout::Pax);
        assert_eq!(nsm.page_cap, pax.page_cap);
        assert_eq!(pax.field_stride(), 4);
        assert_eq!(nsm.field_stride(), 100);
    }

    #[test]
    fn pax_round_trips_values_through_minipages() {
        let mut a = arena();
        let mut h = HeapFile::with_layout(20, 0, PageLayout::Pax);
        // 5-field records with distinguishable values per field.
        let mut rids = Vec::new();
        for i in 0..1000i32 {
            let mut rec = Vec::new();
            for c in 0..5 {
                rec.extend_from_slice(&(i * 10 + c).to_le_bytes());
            }
            rids.push(h.insert_raw(&mut a, &rec).unwrap());
        }
        for (i, rid) in rids.iter().enumerate() {
            for c in 0..5usize {
                let addr = h.field_addr(*rid, c).unwrap();
                assert_eq!(a.read_i32(addr), i as i32 * 10 + c as i32);
            }
        }
    }

    #[test]
    fn pax_minipages_are_disjoint_and_within_the_page() {
        let h = HeapFile::with_layout(100, 0, PageLayout::Pax);
        let page = 0u64; // relative addresses
        let mp = h.minipage_bytes();
        assert_eq!(mp, h.page_cap as u64 * 4);
        for c in 0..h.n_fields() as usize {
            let base = h.minipage_base(page, c);
            assert_eq!(base, PAGE_HDR + c as u64 * mp);
            assert!(base + mp <= PAGE_SIZE, "minipage {c} overruns the page");
            // First/last slot of this column stay inside the minipage.
            assert_eq!(h.field_addr_at(page, 0, c), base);
            assert!(h.field_addr_at(page, h.page_cap - 1, c) + 4 <= base + mp);
        }
    }

    #[test]
    fn pax_narrow_projection_touches_fewer_lines() {
        // The PAX claim at the address level: distinct 32-byte lines needed
        // to read columns {1, 2} of every slot in a full page.
        let lines = |h: &HeapFile| {
            let mut set = std::collections::HashSet::new();
            for slot in 0..h.page_cap {
                for col in [1usize, 2] {
                    set.insert(h.field_addr_at(0, slot, col) / 32);
                }
            }
            set.len()
        };
        let nsm = HeapFile::new(100, 0);
        let pax = HeapFile::with_layout(100, 0, PageLayout::Pax);
        assert!(
            lines(&pax) * 3 < lines(&nsm),
            "PAX should touch >3x fewer lines: pax {} vs nsm {}",
            lines(&pax),
            lines(&nsm)
        );
    }

    #[test]
    fn pages_are_page_aligned_and_disjoint() {
        let mut a = arena();
        let mut h = HeapFile::new(200, 0);
        for i in 0..100 {
            h.insert_raw(&mut a, &record(200, i)).unwrap();
        }
        for w in h.pages.windows(2) {
            assert_eq!(w[0] % PAGE_SIZE, 0);
            assert!(w[1] >= w[0] + PAGE_SIZE);
        }
    }

    #[test]
    fn wrong_record_size_and_full_arena_are_typed_errors() {
        let mut a = arena();
        let mut h = HeapFile::new(100, 0);
        assert_eq!(
            h.insert_raw(&mut a, &record(60, 1)),
            Err(DbError::RecordSizeMismatch {
                expected: 100,
                got: 60
            })
        );
        // A heap arena too small for even one page fails cleanly, and the
        // heap file records nothing.
        let mut tiny = SimArena::new(segment::HEAP, PAGE_SIZE / 2);
        match h.insert_raw(&mut tiny, &record(100, 1)) {
            Err(DbError::ArenaExhausted { requested, .. }) => assert_eq!(requested, PAGE_SIZE),
            other => panic!("expected ArenaExhausted, got {other:?}"),
        }
        assert_eq!(h.n_records, 0);
        assert_eq!(h.n_pages(), 0);
    }
}

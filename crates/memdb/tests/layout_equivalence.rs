//! NSM-vs-PAX equivalence: the page layout changes where bytes live inside
//! a page — never what a query answers. Every query shape of the row/batch
//! parity suite must return identical results under `PageLayout::Nsm` and
//! `PageLayout::Pax`, in both execution modes; and on narrow projections a
//! PAX sequential scan must touch strictly fewer cache lines (the layout's
//! entire reason to exist).

use proptest::prelude::*;
use wdtg_memdb::testutil::{build_db_layout, measure, rows_for};
use wdtg_memdb::{AggSpec, ExecMode, PageLayout, Query, QueryPredicate, SystemId};
use wdtg_sim::{Event, Snapshot};

/// Runs `q` under both layouts (same system, same mode) and asserts the
/// answers are identical. Returns the (NSM, PAX) snapshot deltas.
fn assert_layouts_agree(
    sys: SystemId,
    mode: ExecMode,
    tables: &[(&str, &[Vec<i32>])],
    index_a2: bool,
    q: &Query,
) -> (Snapshot, Snapshot) {
    let mut nsm_db = build_db_layout(sys, PageLayout::Nsm, tables, index_a2).with_exec_mode(mode);
    let mut pax_db = build_db_layout(sys, PageLayout::Pax, tables, index_a2).with_exec_mode(mode);
    let (nsm_res, nsm_d) = measure(&mut nsm_db, q);
    let (pax_res, pax_d) = measure(&mut pax_db, q);
    assert_eq!(
        nsm_res.rows, pax_res.rows,
        "{sys:?} {mode:?} {q:?}: row counts differ across layouts"
    );
    assert!(
        (nsm_res.value - pax_res.value).abs() < 1e-9,
        "{sys:?} {mode:?} {q:?}: values differ across layouts: {} vs {}",
        nsm_res.value,
        pax_res.value
    );
    (nsm_d, pax_d)
}

#[test]
fn narrow_scan_takes_fewer_l2_data_misses_under_pax() {
    // A fields-only engine (System A) scanning 2 of 5 columns of a heap
    // well past L2 capacity: NSM drags whole records through the hierarchy,
    // PAX only the projected minipages.
    let rows = rows_for(120_000, 11);
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Range {
            col: "a2".into(),
            lo: 100,
            hi: 160,
        }),
        agg: AggSpec::avg("a3"),
    };
    for mode in [ExecMode::Row, ExecMode::Batch] {
        let (nsm_d, pax_d) = assert_layouts_agree(SystemId::A, mode, &[("R", &rows)], false, &q);
        let nsm_miss = nsm_d.counters.total(Event::SimL2DataMiss);
        let pax_miss = pax_d.counters.total(Event::SimL2DataMiss);
        assert!(
            pax_miss < nsm_miss,
            "{mode:?}: PAX must miss less on a narrow projection: NSM {nsm_miss} vs PAX {pax_miss}"
        );
    }
}

#[test]
fn full_row_access_stays_near_parity_across_layouts() {
    // OLTP-style point selects materialize whole rows: PAX gathers one
    // field per minipage — the same lines NSM touches contiguously.
    let rows = rows_for(50_000, 13);
    let mut results = Vec::new();
    for layout in PageLayout::ALL {
        let mut db = build_db_layout(SystemId::C, layout, &[("R", &rows)], true);
        // Warm pass then measured pass over the same keys.
        for pass in 0..2 {
            let before = db.cpu().snapshot();
            let mut checksum = 0f64;
            for key in (0..512).map(|k| (k * 977) % 512) {
                let r = db.point_select("R", "a2", key, "a3").unwrap();
                checksum += r.value * r.rows as f64;
            }
            if pass == 1 {
                let d = db.cpu().snapshot().delta(&before);
                results.push((checksum, d.counters.total(Event::SimL2DataMiss)));
            }
        }
    }
    let (nsm, pax) = (results[0], results[1]);
    assert_eq!(nsm.0, pax.0, "point-select answers differ across layouts");
    let ratio = pax.1 as f64 / (nsm.1 as f64).max(1.0);
    assert!(
        (0.7..=1.3).contains(&ratio),
        "full-row point access should be near parity: NSM {} vs PAX {} misses",
        nsm.1,
        pax.1
    );
}

#[test]
fn updates_and_inserts_agree_across_layouts() {
    let rows = rows_for(4_000, 19);
    for layout in PageLayout::ALL {
        let mut db = build_db_layout(SystemId::B, layout, &[("R", &rows)], true);
        let upd = db
            .run(&Query::UpdateAdd {
                table: "R".into(),
                key_col: "a2".into(),
                key: 37,
                set_col: "a3".into(),
                delta: 5,
            })
            .unwrap();
        assert!(upd.rows > 0, "{layout:?}: update touched no rows");
        db.run(&Query::InsertRow {
            table: "R".into(),
            values: vec![9_999_999, 37, 123, 0, 0],
        })
        .unwrap();
        // The inserted row is found through the index afterwards.
        let sel = db.point_select("R", "a2", 37, "a3").unwrap();
        assert!(sel.rows > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized scan/filter queries: identical answers under both layouts
    /// on arbitrary data, selectivities, systems, exec modes, with and
    /// without an index.
    #[test]
    fn random_range_selects_agree(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100i32..100, 5..=5), 1..400),
        lo in -120i32..120,
        span in 0i32..150,
        sys_pick in 0usize..4,
        batch in any::<bool>(),
        with_index in any::<bool>(),
    ) {
        let sys = SystemId::ALL[sys_pick];
        let mode = if batch { ExecMode::Batch } else { ExecMode::Row };
        let q = Query::SelectAgg {
            table: "R".into(),
            predicate: Some(QueryPredicate::Range {
                col: "a2".into(), lo, hi: lo.saturating_add(span),
            }),
            agg: AggSpec::avg("a3"),
        };
        assert_layouts_agree(sys, mode, &[("R", &rows)], with_index, &q);
    }

    /// Randomized joins: identical answers under both layouts.
    #[test]
    fn random_joins_agree(
        r_rows in proptest::collection::vec(
            proptest::collection::vec(-10i32..10, 5..=5), 1..120),
        s_rows in proptest::collection::vec(
            proptest::collection::vec(-10i32..10, 5..=5), 1..80),
        sys_pick in 0usize..4,
        batch in any::<bool>(),
    ) {
        let sys = SystemId::ALL[sys_pick];
        let mode = if batch { ExecMode::Batch } else { ExecMode::Row };
        let q = Query::join_avg("R", "S");
        assert_layouts_agree(sys, mode, &[("R", &r_rows), ("S", &s_rows)], false, &q);
    }

    /// Randomized grouped aggregation: identical group/value pairs.
    #[test]
    fn random_groupbys_agree(
        rows in proptest::collection::vec(
            proptest::collection::vec(-30i32..30, 5..=5), 1..200),
        sys_pick in 0usize..4,
    ) {
        let sys = SystemId::ALL[sys_pick];
        let mut nsm_db = build_db_layout(sys, PageLayout::Nsm, &[("R", &rows)], false);
        let mut pax_db = build_db_layout(sys, PageLayout::Pax, &[("R", &rows)], false);
        let spec = AggSpec::avg("a3");
        let want = nsm_db.run_grouped("R", "a2", None, &spec).unwrap();
        let got = pax_db.run_grouped("R", "a2", None, &spec).unwrap();
        prop_assert_eq!(want, got);
    }
}

//! Row-mode vs batch-mode equivalence: the vectorized path must produce
//! identical answers with (near-)identical simulated *data* behaviour —
//! batching collapses instructions, not data traffic.
//!
//! Documented amortization differences between the modes:
//! * access-granularity counters (`DATA_MEM_REFS`, `MISALIGN_MEM_REF`)
//!   shrink in batch mode because contiguous record runs are charged as one
//!   bookkeeping unit;
//! * the batch-path blocks have their own (small) private regions and
//!   rotate their probe/fetch phases far more slowly than per-row blocks,
//!   so a few dozen of their lines can still be cold after warm-up;
//! * on prefetching profiles (System B) the prefetch stream is identical
//!   but compute time between issue and demand shrinks, so a few prefetches
//!   can change timeliness class near page boundaries;
//! * when the working set sits exactly at L2 capacity, LRU makes miss
//!   counts sensitive to *any* interleaving change (code lines compete with
//!   data lines per set), so tight equality is only asserted in the
//!   cache-resident and streaming regimes the paper's experiments occupy.
//!
//! Query answers are asserted exactly in every regime.

use proptest::prelude::*;
use wdtg_memdb::testutil::{build_db_layout, measure, rows_for};
use wdtg_memdb::{AggSpec, Database, ExecMode, PageLayout, Query, QueryPredicate, SystemId};
use wdtg_sim::{Event, Snapshot};

fn build_db(sys: SystemId, tables: &[(&str, &[Vec<i32>])], index_a2: bool) -> Database {
    build_db_layout(sys, PageLayout::Nsm, tables, index_a2)
}

/// Builds two identical databases, runs `q` row-mode on one and batch-mode
/// on the other, and checks answers and data-miss closeness.
fn assert_modes_agree(
    sys: SystemId,
    tables: &[(&str, &[Vec<i32>])],
    index_a2: bool,
    q: &Query,
) -> (Snapshot, Snapshot) {
    assert_modes_agree_layout(sys, PageLayout::Nsm, tables, index_a2, q)
}

/// [`assert_modes_agree`] over an explicit page layout: the row-vs-batch
/// contract (identical answers, near-identical data misses) holds for both
/// on-page layouts.
fn assert_modes_agree_layout(
    sys: SystemId,
    layout: PageLayout,
    tables: &[(&str, &[Vec<i32>])],
    index_a2: bool,
    q: &Query,
) -> (Snapshot, Snapshot) {
    let mut row_db = build_db_layout(sys, layout, tables, index_a2);
    let mut batch_db =
        build_db_layout(sys, layout, tables, index_a2).with_exec_mode(ExecMode::Batch);
    let (row_res, row_d) = measure(&mut row_db, q);
    let (batch_res, batch_d) = measure(&mut batch_db, q);

    assert_eq!(
        row_res.rows, batch_res.rows,
        "{sys:?} {q:?}: row counts differ"
    );
    assert!(
        (row_res.value - batch_res.value).abs() < 1e-9,
        "{sys:?} {q:?}: values differ: {} vs {}",
        row_res.value,
        batch_res.value
    );

    // Data misses: identical line traffic modulo the documented
    // amortization — absolute slack for cold batch-block lines plus 5%.
    let row_miss = row_d.counters.total(Event::SimL2DataMiss) as f64;
    let batch_miss = batch_d.counters.total(Event::SimL2DataMiss) as f64;
    let slack = 64.0 + row_miss * 0.05;
    assert!(
        (row_miss - batch_miss).abs() <= slack,
        "{sys:?} {q:?}: L2 data misses diverge: row {row_miss} vs batch {batch_miss}"
    );
    (row_d, batch_d)
}

#[test]
fn srs_instruction_collapse_and_miss_parity_all_systems() {
    // A streaming scan (heap well past L2 capacity, like the paper's 1.2 GB
    // relation against a 512 KB L2): batch mode must retire far fewer
    // instructions per tuple while answers and data misses match — the
    // paper's per-tuple overhead, measurably collapsed.
    let rows = rows_for(60_000, 17);
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Range {
            col: "a2".into(),
            lo: 100,
            hi: 400,
        }),
        agg: AggSpec::avg("a3"),
    };
    for sys in SystemId::ALL {
        let (row_d, batch_d) = assert_modes_agree(sys, &[("R", &rows)], false, &q);
        let row_instr = row_d.counters.total(Event::InstRetired) as f64;
        let batch_instr = batch_d.counters.total(Event::InstRetired) as f64;
        assert!(
            batch_instr < row_instr * 0.5,
            "{sys:?}: expected >=2x instruction collapse, row {row_instr} vs batch {batch_instr}"
        );
        assert!(
            batch_d.cycles < row_d.cycles,
            "{sys:?}: batch mode must also be faster in simulated cycles"
        );
    }
}

#[test]
fn srs_miss_parity_holds_under_pax_too() {
    // The batched PAX scan arm streams minipage spans through the run fast
    // lane; its simulated line traffic must match the row path's per-slot
    // touches the same way the NSM arms match — otherwise the layout
    // comparison would measure the executor, not the layout.
    let rows = rows_for(60_000, 17);
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Range {
            col: "a2".into(),
            lo: 100,
            hi: 400,
        }),
        agg: AggSpec::avg("a3"),
    };
    // A: fields-only; B: prefetching full-record; C: plain full-record.
    for sys in [SystemId::A, SystemId::B, SystemId::C] {
        let (row_d, batch_d) =
            assert_modes_agree_layout(sys, PageLayout::Pax, &[("R", &rows)], false, &q);
        let row_instr = row_d.counters.total(Event::InstRetired) as f64;
        let batch_instr = batch_d.counters.total(Event::InstRetired) as f64;
        assert!(
            batch_instr < row_instr * 0.5,
            "{sys:?}: instruction collapse must survive the PAX layout"
        );
    }
}

#[test]
fn indexed_range_selection_modes_agree() {
    let rows = rows_for(4_000, 23);
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Range {
            col: "a2".into(),
            lo: 32,
            hi: 200,
        }),
        agg: AggSpec::avg("a3"),
    };
    // B/C/D use the index for range selections.
    for sys in [SystemId::B, SystemId::C, SystemId::D] {
        assert_modes_agree(sys, &[("R", &rows)], true, &q);
    }
}

#[test]
fn join_modes_agree() {
    let r = rows_for(3_000, 29);
    let s: Vec<Vec<i32>> = (0..512).map(|i| vec![i, i * 3, i * 7, 0, 0]).collect();
    let q = Query::join_avg("R", "S");
    for sys in SystemId::ALL {
        assert_modes_agree(sys, &[("R", &r), ("S", &s)], false, &q);
    }
}

#[test]
fn grouped_aggregation_modes_agree() {
    let rows = rows_for(6_000, 31);
    for sys in [SystemId::A, SystemId::C] {
        let mut row_db = build_db(sys, &[("R", &rows)], false);
        let mut batch_db = build_db(sys, &[("R", &rows)], false).with_exec_mode(ExecMode::Batch);
        let spec = AggSpec::sum("a3");
        let want = row_db.run_grouped("R", "a4", None, &spec).unwrap();
        let got = batch_db.run_grouped("R", "a4", None, &spec).unwrap();
        assert_eq!(want, got, "{sys:?}: grouped results differ across modes");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized scan/filter queries: identical answers in both modes on
    /// arbitrary data, selectivities and systems, with and without an index.
    #[test]
    fn random_range_selects_agree(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100i32..100, 5..=5), 1..400),
        lo in -120i32..120,
        span in 0i32..150,
        sys_pick in 0usize..4,
        with_index in any::<bool>(),
    ) {
        let sys = SystemId::ALL[sys_pick];
        let q = Query::SelectAgg {
            table: "R".into(),
            predicate: Some(QueryPredicate::Range {
                col: "a2".into(), lo, hi: lo.saturating_add(span),
            }),
            agg: AggSpec::avg("a3"),
        };
        assert_modes_agree(sys, &[("R", &rows)], with_index, &q);
    }

    /// Randomized joins: identical answers in both modes.
    #[test]
    fn random_joins_agree(
        r_rows in proptest::collection::vec(
            proptest::collection::vec(-10i32..10, 5..=5), 1..120),
        s_rows in proptest::collection::vec(
            proptest::collection::vec(-10i32..10, 5..=5), 1..80),
        sys_pick in 0usize..4,
    ) {
        let sys = SystemId::ALL[sys_pick];
        let q = Query::join_avg("R", "S");
        assert_modes_agree(sys, &[("R", &r_rows), ("S", &s_rows)], false, &q);
    }

    /// Randomized grouped aggregation: identical group/value pairs.
    #[test]
    fn random_groupbys_agree(
        rows in proptest::collection::vec(
            proptest::collection::vec(-30i32..30, 5..=5), 1..200),
        sys_pick in 0usize..4,
    ) {
        let sys = SystemId::ALL[sys_pick];
        let mut row_db = build_db(sys, &[("R", &rows)], false);
        let mut batch_db = build_db(sys, &[("R", &rows)], false).with_exec_mode(ExecMode::Batch);
        let spec = AggSpec::avg("a3");
        let want = row_db.run_grouped("R", "a2", None, &spec).unwrap();
        let got = batch_db.run_grouped("R", "a2", None, &spec).unwrap();
        prop_assert_eq!(want, got);
    }
}

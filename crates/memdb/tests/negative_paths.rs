//! Negative-path regression tests: malformed queries must come back as
//! `Err(DbError)`, never as a process-killing panic. The planner used to
//! resolve scan column positions with `.expect("present")` — fine until a
//! plan references a column the scan projected away, at which point a
//! release build dies instead of reporting the query as unplannable.

use wdtg_memdb::testutil::{build_db_layout, rows_for};
use wdtg_memdb::{AggSpec, DbError, Expr, PageLayout, Query, QueryPredicate, SystemId};

fn db() -> wdtg_memdb::Database {
    let rows = rows_for(500, 7);
    build_db_layout(SystemId::C, PageLayout::Nsm, &[("R", &rows)], true)
}

#[test]
fn unknown_aggregate_column_is_an_error() {
    let mut db = db();
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: None,
        agg: AggSpec::avg("no_such_col"),
    };
    assert_eq!(
        db.run(&q),
        Err(DbError::ColumnNotFound("no_such_col".into()))
    );
}

#[test]
fn unknown_predicate_column_is_an_error() {
    let mut db = db();
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Range {
            col: "ghost".into(),
            lo: 0,
            hi: 100,
        }),
        agg: AggSpec::avg("a3"),
    };
    assert_eq!(db.run(&q), Err(DbError::ColumnNotFound("ghost".into())));
}

#[test]
fn out_of_range_expression_column_is_an_error_not_a_panic() {
    let mut db = db();
    // Column 99 does not exist in the 5-column schema; the planner must
    // reject the expression instead of indexing past the scan set.
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Expr(Expr::col(99).gt(Expr::lit(0)))),
        agg: AggSpec::avg("a3"),
    };
    match db.run(&q) {
        Err(DbError::PlanError(_)) => {}
        other => panic!("expected PlanError, got {other:?}"),
    }
}

#[test]
fn unknown_join_columns_are_errors() {
    let rows = rows_for(200, 3);
    let srows = rows_for(50, 5);
    let mut db = build_db_layout(
        SystemId::C,
        PageLayout::Nsm,
        &[("R", &rows), ("S", &srows)],
        false,
    );
    let q = Query::JoinAgg {
        left: "R".into(),
        right: "S".into(),
        left_col: "nope".into(),
        right_col: "a1".into(),
        agg: AggSpec::avg("a3"),
    };
    assert_eq!(db.run(&q), Err(DbError::ColumnNotFound("nope".into())));
    let q = Query::JoinAgg {
        left: "R".into(),
        right: "S".into(),
        left_col: "a2".into(),
        right_col: "nope".into(),
        agg: AggSpec::avg("a3"),
    };
    assert_eq!(db.run(&q), Err(DbError::ColumnNotFound("nope".into())));
}

#[test]
fn unknown_group_and_agg_columns_in_run_grouped_are_errors() {
    let mut db = db();
    assert_eq!(
        db.run_grouped("R", "ghost", None, &AggSpec::avg("a3")),
        Err(DbError::ColumnNotFound("ghost".into()))
    );
    assert_eq!(
        db.run_grouped("R", "a4", None, &AggSpec::avg("ghost")),
        Err(DbError::ColumnNotFound("ghost".into()))
    );
}

#[test]
fn run_partial_rejects_point_operations() {
    let mut db = db();
    let q = Query::PointSelect {
        table: "R".into(),
        key_col: "a1".into(),
        key: 1,
        read_col: "a3".into(),
    };
    match db.run_partial(&q) {
        Err(DbError::PlanError(_)) => {}
        other => panic!("expected PlanError, got {other:?}"),
    }
}

//! Negative-path regression tests: malformed queries must come back as
//! `Err(DbError)`, never as a process-killing panic. The planner used to
//! resolve scan column positions with `.expect("present")` — fine until a
//! plan references a column the scan projected away, at which point a
//! release build dies instead of reporting the query as unplannable.

use wdtg_memdb::testutil::{build_db_layout, rows_for};
use wdtg_memdb::{
    AggSpec, DbError, Expr, FaultPlan, FaultSite, JoinAlgo, PageLayout, Query, QueryPredicate,
    ResourceBudget, SystemId,
};

fn db() -> wdtg_memdb::Database {
    let rows = rows_for(500, 7);
    build_db_layout(SystemId::C, PageLayout::Nsm, &[("R", &rows)], true)
}

#[test]
fn unknown_aggregate_column_is_an_error() {
    let mut db = db();
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: None,
        agg: AggSpec::avg("no_such_col"),
    };
    assert_eq!(
        db.run(&q),
        Err(DbError::ColumnNotFound("no_such_col".into()))
    );
}

#[test]
fn unknown_predicate_column_is_an_error() {
    let mut db = db();
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Range {
            col: "ghost".into(),
            lo: 0,
            hi: 100,
        }),
        agg: AggSpec::avg("a3"),
    };
    assert_eq!(db.run(&q), Err(DbError::ColumnNotFound("ghost".into())));
}

#[test]
fn out_of_range_expression_column_is_an_error_not_a_panic() {
    let mut db = db();
    // Column 99 does not exist in the 5-column schema; the planner must
    // reject the expression instead of indexing past the scan set.
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Expr(Expr::col(99).gt(Expr::lit(0)))),
        agg: AggSpec::avg("a3"),
    };
    match db.run(&q) {
        Err(DbError::PlanError(_)) => {}
        other => panic!("expected PlanError, got {other:?}"),
    }
}

#[test]
fn unknown_join_columns_are_errors() {
    let rows = rows_for(200, 3);
    let srows = rows_for(50, 5);
    let mut db = build_db_layout(
        SystemId::C,
        PageLayout::Nsm,
        &[("R", &rows), ("S", &srows)],
        false,
    );
    let q = Query::JoinAgg {
        left: "R".into(),
        right: "S".into(),
        left_col: "nope".into(),
        right_col: "a1".into(),
        agg: AggSpec::avg("a3"),
    };
    assert_eq!(db.run(&q), Err(DbError::ColumnNotFound("nope".into())));
    let q = Query::JoinAgg {
        left: "R".into(),
        right: "S".into(),
        left_col: "a2".into(),
        right_col: "nope".into(),
        agg: AggSpec::avg("a3"),
    };
    assert_eq!(db.run(&q), Err(DbError::ColumnNotFound("nope".into())));
}

#[test]
fn unknown_group_and_agg_columns_in_run_grouped_are_errors() {
    let mut db = db();
    assert_eq!(
        db.run_grouped("R", "ghost", None, &AggSpec::avg("a3")),
        Err(DbError::ColumnNotFound("ghost".into()))
    );
    assert_eq!(
        db.run_grouped("R", "a4", None, &AggSpec::avg("ghost")),
        Err(DbError::ColumnNotFound("ghost".into()))
    );
}

#[test]
fn cancelled_queries_return_cancelled_until_cleared() {
    let mut db = db();
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: None,
        agg: AggSpec::avg("a3"),
    };
    let token = db.cancel_token();
    token.cancel();
    assert_eq!(db.run(&q), Err(DbError::Cancelled));
    token.clear();
    assert!(db.run(&q).is_ok(), "cleared token must unblock queries");
}

#[test]
fn cycle_budget_breach_is_a_typed_error() {
    let rows = rows_for(4000, 7);
    let mut db = build_db_layout(SystemId::C, PageLayout::Nsm, &[("R", &rows)], false);
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: None,
        agg: AggSpec::avg("a3"),
    };
    assert!(db.run(&q).is_ok(), "unlimited run must succeed");

    db.set_budget(ResourceBudget::unlimited().with_max_cycles(1_000));
    match db.run(&q) {
        Err(DbError::BudgetExceeded {
            resource: "cycles",
            used,
            limit,
        }) => assert!(used > limit),
        other => panic!("expected a cycles budget breach, got {other:?}"),
    }
    assert!(db.robustness_stats().budget_stops >= 1);

    db.set_budget(ResourceBudget::unlimited());
    assert!(db.run(&q).is_ok(), "disarming the budget must recover");
}

#[test]
fn injected_io_and_checksum_faults_are_typed_and_recoverable() {
    let mut db = db();
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: None,
        agg: AggSpec::avg("a3"),
    };

    db.set_fault_plan(FaultPlan::disabled().with_rate(FaultSite::BufpoolFetch, 1.0));
    match db.run(&q) {
        Err(e @ DbError::IoFault { .. }) => assert!(e.is_transient()),
        other => panic!("expected IoFault, got {other:?}"),
    }
    assert!(db.robustness_stats().bufpool_fetch_faults >= 1);

    db.set_fault_plan(FaultPlan::disabled().with_rate(FaultSite::PageChecksum, 1.0));
    match db.run(&q) {
        Err(e @ DbError::PageCorrupt { .. }) => assert!(e.is_transient()),
        other => panic!("expected PageCorrupt, got {other:?}"),
    }
    assert!(db.robustness_stats().page_checksum_faults >= 1);

    db.set_fault_plan(FaultPlan::disabled());
    assert!(db.run(&q).is_ok(), "disabling faults must recover");
}

#[test]
fn exhausted_shard_retries_surface_shard_failed() {
    let rows = rows_for(2000, 7);
    let db = build_db_layout(SystemId::C, PageLayout::Nsm, &[("R", &rows)], false);
    let mut sharded = db.shard(2).unwrap();
    sharded.set_fault_plan(FaultPlan::disabled().with_rate(FaultSite::ShardExec, 1.0));
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: None,
        agg: AggSpec::avg("a3"),
    };
    match sharded.run(&q) {
        Err(DbError::ShardFailed {
            shard: 0,
            attempts: 3,
            cause,
        }) => assert!(cause.is_transient()),
        other => panic!("expected ShardFailed after exhausted retries, got {other:?}"),
    }
    let rs = sharded.router_stats();
    assert_eq!(rs.retries, 2, "two retries before giving up");
    assert_eq!(rs.failed, 1);
    assert_eq!(rs.recovered, 0);

    sharded.set_fault_plan(FaultPlan::disabled());
    assert!(sharded.run(&q).is_ok(), "disabling faults must recover");
}

#[test]
fn shard_mutations_under_faults_fail_without_retry() {
    let rows = rows_for(100, 7);
    let db = build_db_layout(SystemId::C, PageLayout::Nsm, &[("R", &rows)], false);
    let mut sharded = db.shard(2).unwrap();
    sharded.set_fault_plan(FaultPlan::disabled().with_rate(FaultSite::ShardExec, 1.0));
    let q = Query::InsertRow {
        table: "R".into(),
        values: vec![5000, 1, 2, 3, 0],
    };
    match sharded.run(&q) {
        Err(DbError::ShardFailed { attempts: 1, .. }) => {}
        other => panic!("mutations must fail on the first fault, got {other:?}"),
    }
    assert_eq!(
        sharded.router_stats().retries,
        0,
        "mutations are never retried (a re-run could double-apply)"
    );
}

#[test]
fn tight_arena_budget_downgrades_partitioned_join_instead_of_failing() {
    let rows = rows_for(2000, 3);
    let srows = rows_for(400, 5);
    let mut db = build_db_layout(
        SystemId::C,
        PageLayout::Nsm,
        &[("R", &rows), ("S", &srows)],
        false,
    );
    db.set_join_algo(JoinAlgo::PartitionedHash);
    let q = Query::join_avg("R", "S");

    let baseline = db.run(&q).expect("unbudgeted partitioned join");
    assert_eq!(db.robustness_stats().join_downgrades, 0);

    db.set_budget(ResourceBudget::unlimited().with_max_arena_bytes(16 * 1024));
    let degraded = db.run(&q).expect("budgeted join must degrade, not die");
    assert_eq!(
        degraded.value.to_bits(),
        baseline.value.to_bits(),
        "the degraded plan must produce a bit-identical answer"
    );
    assert_eq!(degraded.rows, baseline.rows);
    assert_eq!(db.robustness_stats().join_downgrades, 1);
    assert!(db.robustness_stats().budget_stops >= 1);
}

#[test]
fn run_partial_rejects_point_operations() {
    let mut db = db();
    let q = Query::PointSelect {
        table: "R".into(),
        key_col: "a1".into(),
        key: 1,
        read_col: "a3".into(),
    };
    match db.run_partial(&q) {
        Err(DbError::PlanError(_)) => {}
        other => panic!("expected PlanError, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// SQL frontend: malformed statements come back as typed errors with byte
// spans and a source snippet, never as a panic.

mod sql_errors {
    use super::db;
    use wdtg_memdb::sql::Session;
    use wdtg_memdb::DbError;

    fn compile_err(sql: &str) -> DbError {
        wdtg_memdb::sql::compile(&db(), sql).expect_err(sql)
    }

    #[test]
    fn syntax_errors_carry_span_and_snippet() {
        match compile_err("SELECT AVG(a3) FROM R WHERE") {
            DbError::ParseError { span, snippet, .. } => {
                // The error points at the end of the truncated input.
                assert_eq!(span.0, 27, "span: {span:?}");
                assert!(snippet.contains("WHERE"), "snippet: {snippet}");
            }
            other => panic!("expected ParseError, got {other:?}"),
        }
    }

    #[test]
    fn disjunctions_are_rejected_as_unsupported() {
        match compile_err("SELECT AVG(a3) FROM R WHERE a2 > 1 OR a2 < 9") {
            DbError::ParseError { msg, .. } => {
                assert!(msg.contains("conjunctive"), "msg: {msg}")
            }
            other => panic!("expected ParseError, got {other:?}"),
        }
    }

    #[test]
    fn unknown_table_is_a_bind_error_at_the_table_name() {
        let sql = "SELECT AVG(a3) FROM ghost";
        match compile_err(sql) {
            DbError::BindError { span, snippet, msg } => {
                assert_eq!(&sql[span.0..span.1], "ghost");
                assert!(msg.contains("ghost"), "msg: {msg}");
                assert!(snippet.contains("ghost"), "snippet: {snippet}");
            }
            other => panic!("expected BindError, got {other:?}"),
        }
    }

    #[test]
    fn unknown_column_is_a_bind_error_at_the_column_name() {
        let sql = "SELECT AVG(nope) FROM R";
        match compile_err(sql) {
            DbError::BindError { span, .. } => assert_eq!(&sql[span.0..span.1], "nope"),
            other => panic!("expected BindError, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_literals_are_bind_errors() {
        match compile_err("SELECT AVG(a3) FROM R WHERE a2 >= 3000000000") {
            DbError::BindError { msg, .. } => {
                assert!(msg.contains("32-bit"), "msg: {msg}")
            }
            other => panic!("expected BindError, got {other:?}"),
        }
    }

    #[test]
    fn insert_arity_mismatch_is_a_bind_error() {
        match compile_err("INSERT INTO R VALUES (1, 2)") {
            DbError::BindError { msg, .. } => {
                assert!(msg.contains("2 values"), "msg: {msg}")
            }
            other => panic!("expected BindError, got {other:?}"),
        }
    }

    #[test]
    fn grouped_statements_are_refused_by_the_scalar_entry_point() {
        let mut sess = Session::open(db());
        match sess.sql("SELECT a4, AVG(a3) FROM R GROUP BY a4") {
            Err(DbError::PlanError(msg)) => {
                assert!(msg.contains("sql_grouped"), "msg: {msg}")
            }
            other => panic!("expected PlanError, got {other:?}"),
        }
    }

    #[test]
    fn frontend_errors_do_not_poison_the_session() {
        let mut sess = Session::open(db());
        assert!(sess.sql("SELEC TYPO").is_err());
        assert!(sess.sql("SELECT AVG(ghost) FROM R").is_err());
        let ok = sess
            .sql("SELECT COUNT(*) FROM R")
            .expect("session still usable after frontend errors");
        assert_eq!(ok.rows, 500);
    }
}

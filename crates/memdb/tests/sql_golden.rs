//! Golden SQL tests: the frontend must compile each statement to exactly the
//! hand-built [`Query`] the classic API takes, and executing through
//! [`Session`] must return bit-identical answers to executing the hand-built
//! query — across exec modes, page layouts and shard counts. A property
//! test sweeps random range bounds and aggregates over the same contract.

use proptest::prelude::*;
use wdtg_memdb::sql::{compile, BoundStatement, Session};
use wdtg_memdb::testutil::{build_db_layout, build_db_with_indexes, rows_for};
use wdtg_memdb::{
    AggKind, AggSpec, CmpOp, ExecMode, Expr, PageLayout, Query, QueryPredicate, SystemId,
};

fn db(layout: PageLayout) -> wdtg_memdb::Database {
    let rows = rows_for(600, 7);
    build_db_layout(SystemId::C, layout, &[("R", &rows)], true)
}

/// R joined with S on R.a2 = S.a1, point-indexed on R.a1, shardable.
fn join_db(sys: SystemId) -> wdtg_memdb::Database {
    let r = rows_for(2_000, 11);
    let s: Vec<Vec<i32>> = (0..512).map(|i| vec![i, i * 2, i % 5, 0, 0]).collect();
    let mut db = build_db_with_indexes(
        sys,
        PageLayout::Nsm,
        &[("R", &r), ("S", &s)],
        &[("R", "a1")],
    );
    db.set_shard_key("R", "a2").unwrap();
    db.set_shard_key("S", "a1").unwrap();
    db
}

fn scalar(db: &wdtg_memdb::Database, sql: &str) -> Query {
    match compile(db, sql).expect(sql) {
        BoundStatement::Scalar(q) => q,
        other => panic!("{sql}: expected scalar statement, got {other:?}"),
    }
}

#[test]
fn range_selection_compiles_to_the_native_range_predicate() {
    let db = db(PageLayout::Nsm);
    let want = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Range {
            col: "a2".into(),
            lo: 100,
            hi: 400,
        }),
        agg: AggSpec::avg("a3"),
    };
    // Both conjunct orders (and lower-case keywords) collapse to the same
    // exclusive range.
    for sql in [
        "SELECT AVG(a3) FROM R WHERE a2 > 100 AND a2 < 400",
        "SELECT AVG(a3) FROM R WHERE a2 < 400 AND a2 > 100",
        "select avg(a3) from R where a2 > 100 and a2 < 400;",
    ] {
        assert_eq!(scalar(&db, sql), want, "{sql}");
    }
}

#[test]
fn non_range_conjunctions_compile_to_expression_predicates() {
    let db = db(PageLayout::Nsm);
    let q = scalar(&db, "SELECT SUM(a3) FROM R WHERE a2 >= 100 AND a4 <> 3");
    let want = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Expr(Expr::And(
            Box::new(Expr::Cmp(
                CmpOp::Ge,
                Box::new(Expr::Col(1)),
                Box::new(Expr::Const(100)),
            )),
            Box::new(Expr::Cmp(
                CmpOp::Ne,
                Box::new(Expr::Col(3)),
                Box::new(Expr::Const(3)),
            )),
        ))),
        agg: AggSpec::sum("a3"),
    };
    assert_eq!(q, want);
}

#[test]
fn count_star_compiles_to_the_bare_count() {
    let db = db(PageLayout::Nsm);
    assert_eq!(
        scalar(&db, "SELECT COUNT(*) FROM R"),
        Query::SelectAgg {
            table: "R".into(),
            predicate: None,
            agg: AggSpec::count(),
        }
    );
}

#[test]
fn joins_compile_with_the_aggregate_side_as_probe() {
    let db = join_db(SystemId::C);
    let want = Query::JoinAgg {
        left: "R".into(),
        right: "S".into(),
        left_col: "a2".into(),
        right_col: "a1".into(),
        agg: AggSpec::avg("a3"),
    };
    // Comma and JOIN..ON spellings, and both condition orders, are one plan.
    for sql in [
        "SELECT AVG(R.a3) FROM R, S WHERE R.a2 = S.a1",
        "SELECT AVG(R.a3) FROM R JOIN S ON R.a2 = S.a1",
        "SELECT AVG(R.a3) FROM R INNER JOIN S ON S.a1 = R.a2",
    ] {
        assert_eq!(scalar(&db, sql), want, "{sql}");
    }
    // Aggregating the other table flips probe/build orientation.
    assert_eq!(
        scalar(&db, "SELECT MAX(S.a2) FROM R, S WHERE R.a2 = S.a1"),
        Query::JoinAgg {
            left: "S".into(),
            right: "R".into(),
            left_col: "a1".into(),
            right_col: "a2".into(),
            agg: AggSpec {
                kind: AggKind::Max,
                col: "a2".into(),
            },
        }
    );
    // COUNT(*) counts matches via the always-read probe key.
    assert_eq!(
        scalar(&db, "SELECT COUNT(*) FROM R, S WHERE R.a2 = S.a1"),
        Query::JoinAgg {
            left: "R".into(),
            right: "S".into(),
            left_col: "a2".into(),
            right_col: "a1".into(),
            agg: AggSpec {
                kind: AggKind::Count,
                col: "a2".into(),
            },
        }
    );
}

#[test]
fn point_ops_and_mutations_compile_to_their_native_forms() {
    let db = join_db(SystemId::C);
    assert_eq!(
        scalar(&db, "SELECT a3 FROM R WHERE a1 = 42"),
        Query::PointSelect {
            table: "R".into(),
            key_col: "a1".into(),
            key: 42,
            read_col: "a3".into(),
        }
    );
    assert_eq!(
        scalar(&db, "INSERT INTO S VALUES (600, 7, -1, 0, 0)"),
        Query::InsertRow {
            table: "S".into(),
            values: vec![600, 7, -1, 0, 0],
        }
    );
    assert_eq!(
        scalar(&db, "UPDATE R SET a3 = a3 + 5 WHERE a1 = 42"),
        Query::UpdateAdd {
            table: "R".into(),
            key_col: "a1".into(),
            key: 42,
            set_col: "a3".into(),
            delta: 5,
        }
    );
}

#[test]
fn grouped_statements_bind_to_the_grouped_entry_point() {
    let db = db(PageLayout::Nsm);
    match compile(
        &db,
        "SELECT a4, AVG(a3) FROM R WHERE a2 > 10 AND a2 < 200 GROUP BY a4",
    ) {
        Ok(BoundStatement::Grouped {
            table,
            group_col,
            predicate,
            agg,
        }) => {
            assert_eq!((table.as_str(), group_col.as_str()), ("R", "a4"));
            assert_eq!(
                predicate,
                Some(QueryPredicate::Range {
                    col: "a2".into(),
                    lo: 10,
                    hi: 200
                })
            );
            assert_eq!(agg, AggSpec::avg("a3"));
        }
        other => panic!("expected grouped statement, got {other:?}"),
    }
}

/// SQL answers must be bit-identical to hand-built answers whatever the
/// session's planner chooses, across exec modes and page layouts.
#[test]
fn session_answers_match_hand_built_queries_across_modes_and_layouts() {
    let sql = "SELECT AVG(a3) FROM R WHERE a2 > 100 AND a2 < 400";
    for layout in PageLayout::ALL {
        let hand = scalar(&db(layout), sql);
        for mode in [ExecMode::Row, ExecMode::Batch] {
            let mut direct = db(layout);
            direct.set_exec_mode(mode);
            let want = direct.run(&hand).unwrap();

            let mut sess = Session::open(db(layout));
            sess.db_mut().unwrap().set_exec_mode(mode);
            let got = sess.sql(sql).unwrap();
            assert_eq!(
                (got.rows, got.value),
                (want.rows, want.value),
                "{layout:?}/{mode:?}: SQL answer diverged from hand-built"
            );
        }
    }
}

/// Same contract over the shard router, at several shard counts.
#[test]
fn sharded_session_answers_match_hand_built_queries() {
    for sql in [
        "SELECT AVG(a3) FROM R WHERE a2 > 100 AND a2 < 400",
        "SELECT AVG(R.a3) FROM R, S WHERE R.a2 = S.a1",
    ] {
        let hand = scalar(&join_db(SystemId::C), sql);
        for n in [1usize, 2, 4] {
            let mut direct = join_db(SystemId::C).shard(n).unwrap();
            let want = direct.run(&hand).unwrap();

            let mut sess = Session::open_sharded(join_db(SystemId::C).shard(n).unwrap());
            let got = sess.sql(sql).unwrap();
            assert_eq!(
                (got.rows, got.value),
                (want.rows, want.value),
                "{n} shards: SQL answer diverged for {sql}"
            );
        }
    }
}

#[test]
fn grouped_sql_matches_the_grouped_entry_point() {
    let sql = "SELECT a4, SUM(a3) FROM R GROUP BY a4";
    let mut direct = db(PageLayout::Nsm);
    let want = direct
        .run_grouped("R", "a4", None, &AggSpec::sum("a3"))
        .unwrap();
    let mut sess = Session::open(db(PageLayout::Nsm));
    let got = sess.sql_grouped(sql).unwrap();
    assert_eq!(got, want);
    assert!(!got.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary range bounds and aggregate functions: the SQL must compile
    /// to exactly the hand-built query, and both must return bit-identical
    /// answers in both exec modes.
    #[test]
    fn sql_equals_hand_built_for_random_ranges(
        lo in -100i32..600,
        span in 0i32..400,
        agg_i in 0usize..4,
        batch in 0usize..2,
    ) {
        let hi = lo.saturating_add(span);
        let (kind, name) = [
            (AggKind::Avg, "AVG"),
            (AggKind::Sum, "SUM"),
            (AggKind::Min, "MIN"),
            (AggKind::Max, "MAX"),
        ][agg_i];
        let sql = format!("SELECT {name}(a3) FROM R WHERE a2 > {lo} AND a2 < {hi}");
        let want_q = Query::SelectAgg {
            table: "R".into(),
            predicate: Some(QueryPredicate::Range { col: "a2".into(), lo, hi }),
            agg: AggSpec { kind, col: "a3".into() },
        };
        let mode = if batch == 1 { ExecMode::Batch } else { ExecMode::Row };

        let mut direct = db(PageLayout::Nsm);
        prop_assert_eq!(&scalar(&direct, &sql), &want_q, "{}", sql);
        direct.set_exec_mode(mode);
        let want = direct.run(&want_q).unwrap();

        let mut sess = Session::open(db(PageLayout::Nsm));
        sess.db_mut().unwrap().set_exec_mode(mode);
        let got = sess.sql(&sql).unwrap();
        prop_assert_eq!((got.rows, got.value), (want.rows, want.value), "{}", sql);
    }
}

//! Branching-vs-predicated selection equivalence.
//!
//! The selection mode is a *cost* knob: it decides whether the qualify
//! decision runs through the branch predictor or through cmov-style
//! arithmetic (plus, in batch mode, whether qualification compacts the
//! batch or installs a selection vector). It must never change an answer.
//! The suite runs the range selection across both exec modes × both page
//! layouts × the selectivity edge set {0, 1%, 50%, 99%, 100%}, asserts
//! identical results, and pins the mode's defining hardware property:
//! predicated plans execute **zero** data-dependent qualify branches, so
//! nothing data-dependent is left to mispredict.

use wdtg_memdb::testutil::{measure, quiet};
use wdtg_memdb::{Database, EngineProfile, ExecMode, PageLayout, Query, SelectionMode, SystemId};
use wdtg_sim::{Event, Mode};

const ROWS: usize = 6_000;

/// 5-column rows with a *well-mixed* random `a2` over 0..512 (splitmix64
/// finalizer): the qualify branch's direction stream must be genuinely
/// unpredictable — the linear sequences of `testutil::rows_for` have
/// patterns a two-level adaptive predictor partially learns.
fn random_rows(n: usize, seed: u64) -> Vec<Vec<i32>> {
    (0..n)
        .map(|i| {
            let mut x = (i as u64).wrapping_add(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            vec![
                i as i32,
                (x % 512) as i32,
                ((x >> 16) % 1009) as i32,
                ((x >> 32) % 7) as i32,
                0,
            ]
        })
        .collect()
}

/// `a2` of [`random_rows`] is uniform over 0..512; bounds for a target
/// selectivity over that domain (qualifying values are `lo+1..=hi-1`).
fn range_for(selectivity: f64) -> (i32, i32) {
    if selectivity <= 0.0 {
        (0, 0) // empty: nothing satisfies a2 > 0 && a2 < 0
    } else if selectivity >= 1.0 {
        (-1, 512) // full: every 0 <= a2 < 512 qualifies
    } else {
        let width = (selectivity * 512.0).round() as i32;
        let lo = (512 - width) / 2;
        (lo, lo + width + 1)
    }
}

fn build(sys: SystemId, layout: PageLayout, mode: ExecMode, selection: SelectionMode) -> Database {
    let rows = random_rows(ROWS, 11);
    let mut db = Database::new(EngineProfile::system(sys), quiet())
        .with_page_layout(layout)
        .with_exec_mode(mode)
        .with_selection_mode(selection);
    db.ctx.instrument = false;
    db.create_table("R", wdtg_memdb::Schema::paper_relation(20))
        .unwrap();
    db.load_rows("R", rows.iter().cloned()).unwrap();
    db.ctx.instrument = true;
    db
}

#[test]
fn selection_modes_agree_on_every_answer() {
    // Oracle from the generator directly.
    let rows = random_rows(ROWS, 11);
    for sys in [SystemId::A, SystemId::C] {
        for mode in [ExecMode::Row, ExecMode::Batch] {
            for layout in PageLayout::ALL {
                for sel in [0.0, 0.01, 0.5, 0.99, 1.0] {
                    let (lo, hi) = range_for(sel);
                    let expected: Vec<i64> = rows
                        .iter()
                        .filter(|r| r[1] > lo && r[1] < hi)
                        .map(|r| r[2] as i64)
                        .collect();
                    let q = Query::range_select_avg("R", lo, hi);
                    let mut results = Vec::new();
                    for selection in SelectionMode::ALL {
                        let mut db = build(sys, layout, mode, selection);
                        results.push(db.run(&q).unwrap());
                    }
                    let (b, p) = (&results[0], &results[1]);
                    assert_eq!(
                        b.rows,
                        expected.len() as u64,
                        "{sys:?} {mode:?} {layout:?} sel {sel}: branching row count vs oracle"
                    );
                    assert_eq!(
                        (b.rows, b.value),
                        (p.rows, p.value),
                        "{sys:?} {mode:?} {layout:?} sel {sel}: selection modes disagree"
                    );
                    if !expected.is_empty() {
                        let avg = expected.iter().sum::<i64>() as f64 / expected.len() as f64;
                        assert!((b.value - avg).abs() < 1e-9, "{sys:?} {mode:?} {layout:?}");
                    }
                }
            }
        }
    }
}

#[test]
fn predicated_batch_mode_reports_zero_qualify_mispredictions() {
    // 50% selectivity is the worst case for the qualify branch — and the
    // case where predication's defining property must hold exactly: no
    // data-dependent branch executed, hence no data-dependent misprediction
    // (SIM.DATA_BRANCH_MISS counts mispredictions of individually simulated
    // branches only; the SRS plan's sole such branch is the qualify site).
    let (lo, hi) = range_for(0.5);
    let q = Query::range_select_avg("R", lo, hi);
    for layout in PageLayout::ALL {
        let mut db = build(
            SystemId::A,
            layout,
            ExecMode::Batch,
            SelectionMode::Predicated,
        );
        let (res, delta) = measure(&mut db, &q);
        assert!(res.rows > 0, "a 50% selection must select rows");
        assert_eq!(
            delta.counters.get(Mode::User, Event::SimDataBranchMiss),
            0,
            "{layout:?}: predicated batch plan executed a data-dependent qualify branch"
        );
        assert!(
            delta.counters.get(Mode::User, Event::SimSelectOps) >= ROWS as u64,
            "{layout:?}: the predication work must be charged (one select lane per row)"
        );
    }

    // The branching twin on the same data mispredicts heavily at 50%.
    let mut db = build(
        SystemId::A,
        PageLayout::Nsm,
        ExecMode::Batch,
        SelectionMode::Branching,
    );
    let (_, delta) = measure(&mut db, &q);
    let miss = delta.counters.get(Mode::User, Event::SimDataBranchMiss);
    assert!(
        miss as f64 > 0.2 * ROWS as f64,
        "a 50% random qualify branch should mispredict often, got {miss}/{ROWS}"
    );
}

#[test]
fn predicated_row_mode_also_eliminates_qualify_branches() {
    let (lo, hi) = range_for(0.5);
    let q = Query::range_select_avg("R", lo, hi);
    let mut db = build(
        SystemId::C,
        PageLayout::Nsm,
        ExecMode::Row,
        SelectionMode::Predicated,
    );
    let (_, delta) = measure(&mut db, &q);
    assert_eq!(delta.counters.get(Mode::User, Event::SimDataBranchMiss), 0);
    assert!(delta.counters.get(Mode::User, Event::SimSelectOps) >= ROWS as u64);
}

#[test]
fn predication_trades_instructions_for_branch_stalls() {
    // The simulator must show the trade both ways at peak-misprediction
    // selectivity: predicated plans retire strictly more instructions
    // (the unconditional select work) and charge strictly less T_B.
    let (lo, hi) = range_for(0.5);
    let q = Query::range_select_avg("R", lo, hi);
    for mode in [ExecMode::Row, ExecMode::Batch] {
        let mut deltas = Vec::new();
        for selection in SelectionMode::ALL {
            let mut db = build(SystemId::A, PageLayout::Nsm, mode, selection);
            deltas.push(measure(&mut db, &q).1);
        }
        let (b, p) = (&deltas[0], &deltas[1]);
        let instr = |d: &wdtg_sim::Snapshot| d.counters.get(Mode::User, Event::InstRetired);
        let tb = |d: &wdtg_sim::Snapshot| d.ledger.total(wdtg_sim::Component::Tb);
        assert!(
            instr(p) > instr(b),
            "{mode:?}: predication must charge its extra instructions"
        );
        assert!(
            tb(p) < tb(b),
            "{mode:?}: predication must cut branch-misprediction stalls \
             ({} vs {})",
            tb(p),
            tb(b)
        );
    }
}

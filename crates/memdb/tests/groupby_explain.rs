//! Grouped aggregation and plan explanation.

use wdtg_memdb::testutil::quiet;
use wdtg_memdb::{
    AggKind, AggSpec, Database, EngineProfile, Query, QueryPredicate, Schema, SystemId,
};

fn cell(i: u64, c: usize) -> i32 {
    let x = i.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(c as u64);
    ((x >> 33) as i32).rem_euclid(1000)
}

fn load(db: &mut Database, rows: u64) {
    db.create_table("T", Schema::paper_relation(40)).unwrap();
    db.load_rows(
        "T",
        (0..rows).map(|i| {
            let mut r: Vec<i32> = (0..10).map(|c| cell(i, c)).collect();
            r[1] = (i % 7) as i32; // group key: 7 groups
            r
        }),
    )
    .unwrap();
}

#[test]
fn grouped_avg_matches_oracle() {
    const N: u64 = 3_000;
    let mut db = Database::new(EngineProfile::system(SystemId::C), quiet());
    load(&mut db, N);
    let got = db
        .run_grouped("T", "a2", None, &AggSpec::avg("a3"))
        .unwrap();
    assert_eq!(got.len(), 7, "seven groups");
    // Oracle.
    for (key, value) in &got {
        let members: Vec<i64> = (0..N)
            .filter(|i| (*i % 7) as i32 == *key)
            .map(|i| cell(i, 2) as i64)
            .collect();
        let want = members.iter().sum::<i64>() as f64 / members.len() as f64;
        assert!((value - want).abs() < 1e-9, "group {key}");
    }
    // Keys ascend.
    assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn grouped_with_range_predicate_and_counts() {
    const N: u64 = 2_000;
    let mut db = Database::new(EngineProfile::system(SystemId::A), quiet());
    load(&mut db, N);
    let pred = QueryPredicate::Range {
        col: "a3".into(),
        lo: 100,
        hi: 600,
    };
    let got = db
        .run_grouped(
            "T",
            "a2",
            Some(&pred),
            &AggSpec {
                kind: AggKind::Count,
                col: "a3".into(),
            },
        )
        .unwrap();
    let total: f64 = got.iter().map(|(_, v)| v).sum();
    let want = (0..N)
        .filter(|i| {
            let v = cell(*i, 2);
            v > 100 && v < 600
        })
        .count() as f64;
    assert_eq!(total, want, "group counts partition the filtered rows");
}

#[test]
fn grouped_aggregation_is_instrumented() {
    const N: u64 = 1_000;
    let mut db = Database::new(EngineProfile::system(SystemId::D), quiet());
    load(&mut db, N);
    let before = db.cpu().snapshot();
    db.run_grouped("T", "a2", None, &AggSpec::sum("a3"))
        .unwrap();
    let delta = db.cpu().snapshot().delta(&before);
    assert!(delta.cycles > 0.0);
    assert!(
        delta.counters.total(wdtg_sim::Event::InstRetired) > N,
        "per-row aggregation work must be charged"
    );
}

#[test]
fn explain_reflects_engine_strategy() {
    let mut a = Database::new(EngineProfile::system(SystemId::A), quiet());
    let mut d = Database::new(EngineProfile::system(SystemId::D), quiet());
    load(&mut a, 10);
    load(&mut d, 10);
    a.create_index("T", "a2").unwrap();
    d.create_index("T", "a2").unwrap();

    let q = Query::SelectAgg {
        table: "T".into(),
        predicate: Some(QueryPredicate::Range {
            col: "a2".into(),
            lo: 1,
            hi: 5,
        }),
        agg: AggSpec::avg("a3"),
    };
    // A ignores the index; D uses it.
    let ea = a.explain(&q).unwrap();
    let ed = d.explain(&q).unwrap();
    assert!(ea.contains("SeqScan"), "System A must scan: {ea}");
    assert!(!ea.contains("IndexRangeScan"));
    assert!(
        ed.contains("IndexRangeScan"),
        "System D must use the index: {ed}"
    );

    let j = Query::join_avg("T", "T");
    assert!(a.explain(&j).unwrap().contains("HashJoin"));

    let p = Query::PointSelect {
        table: "T".into(),
        key_col: "a2".into(),
        key: 3,
        read_col: "a3".into(),
    };
    assert!(d.explain(&p).unwrap().contains("B+tree"));
    assert!(a.explain(&Query::range_select_avg("NOPE", 0, 1)).is_err());
}

//! End-to-end query correctness: every engine profile must return the same
//! (correct) answers; only their hardware behaviour may differ.

use wdtg_memdb::testutil::quiet;
use wdtg_memdb::{
    AggKind, AggSpec, Database, EngineProfile, Expr, Query, QueryPredicate, Schema, SystemId,
};

/// Deterministic value for row i, column c.
fn cell(i: u64, c: usize) -> i32 {
    let x = i
        .wrapping_mul(6364136223846793005)
        .wrapping_add(c as u64)
        .wrapping_mul(1442695040888963407);
    ((x >> 40) as i32).rem_euclid(40_000) + 1
}

fn load_r(db: &mut Database, rows: u64) {
    db.create_table("R", Schema::paper_relation(100)).unwrap();
    db.load_rows(
        "R",
        (0..rows).map(|i| (0..25).map(|c| cell(i, c)).collect()),
    )
    .unwrap();
}

fn oracle_rows(rows: u64) -> Vec<Vec<i32>> {
    (0..rows)
        .map(|i| (0..25).map(|c| cell(i, c)).collect())
        .collect()
}

#[test]
fn range_select_avg_matches_oracle_on_all_systems() {
    const N: u64 = 5_000;
    let rows = oracle_rows(N);
    let (lo, hi) = (10_000, 14_000);
    let selected: Vec<i64> = rows
        .iter()
        .filter(|r| r[1] > lo && r[1] < hi)
        .map(|r| r[2] as i64)
        .collect();
    let expect = selected.iter().sum::<i64>() as f64 / selected.len() as f64;

    for sys in SystemId::ALL {
        let mut db = Database::new(EngineProfile::system(sys), quiet());
        load_r(&mut db, N);
        let res = db.run(&Query::range_select_avg("R", lo, hi)).unwrap();
        assert_eq!(res.rows, selected.len() as u64, "{sys:?} row count");
        assert!((res.value - expect).abs() < 1e-9, "{sys:?} avg mismatch");
    }
}

#[test]
fn indexed_range_selection_same_answer_as_sequential() {
    const N: u64 = 5_000;
    for sys in [SystemId::B, SystemId::D] {
        let mut db = Database::new(EngineProfile::system(sys), quiet());
        load_r(&mut db, N);
        let q = Query::range_select_avg("R", 5_000, 9_000);
        let seq = db.run(&q).unwrap();
        db.create_index("R", "a2").unwrap();
        let idx = db.run(&q).unwrap();
        assert_eq!(seq.rows, idx.rows, "{sys:?}");
        assert!((seq.value - idx.value).abs() < 1e-9, "{sys:?}");
    }
}

#[test]
fn system_a_ignores_the_index() {
    // Identical answers either way, but A's plan must not change when an
    // index appears: we check it via counters — no index-descend work at all.
    const N: u64 = 3_000;
    let mut db = Database::new(EngineProfile::system(SystemId::A), quiet());
    load_r(&mut db, N);
    db.create_index("R", "a2").unwrap();
    let snap = db.cpu().snapshot();
    let res = db.run(&Query::range_select_avg("R", 1_000, 2_000)).unwrap();
    let delta = db.cpu().snapshot().delta(&snap);
    assert!(res.rows > 0);
    // A sequential plan reads every heap page; an index plan would read far
    // fewer data bytes. Check scan volume via memory references: at least
    // one reference per record.
    assert!(
        delta.counters.total(wdtg_sim::Event::DataMemRefs) > N,
        "System A must scan sequentially even when an index exists"
    );
}

#[test]
fn join_avg_matches_oracle_on_all_systems() {
    const NR: u64 = 3_000;
    const NS: u64 = 500;
    // S.a1 is a primary key 1..=NS; R.a2 uniform over 1..=NS so every R row
    // matches exactly one S row (the paper's join has the same shape).
    let r_rows: Vec<Vec<i32>> = (0..NR)
        .map(|i| {
            let mut row: Vec<i32> = (0..25).map(|c| cell(i, c)).collect();
            row[1] = (cell(i, 1) % NS as i32) + 1;
            row
        })
        .collect();
    let s_rows: Vec<Vec<i32>> = (0..NS)
        .map(|i| {
            let mut row: Vec<i32> = (0..25).map(|c| cell(i + 7_000_000, c)).collect();
            row[0] = i as i32 + 1;
            row
        })
        .collect();
    let expect_sum: i64 = r_rows.iter().map(|r| r[2] as i64).sum();
    let expect = expect_sum as f64 / NR as f64;

    for sys in SystemId::ALL {
        let mut db = Database::new(EngineProfile::system(sys), quiet());
        db.create_table("R", Schema::paper_relation(100)).unwrap();
        db.create_table("S", Schema::paper_relation(100)).unwrap();
        db.load_rows("R", r_rows.iter().cloned()).unwrap();
        db.load_rows("S", s_rows.iter().cloned()).unwrap();
        let res = db.run(&Query::join_avg("R", "S")).unwrap();
        assert_eq!(res.rows, NR, "{sys:?}: every R row joins exactly once");
        assert!((res.value - expect).abs() < 1e-9, "{sys:?} join avg");
    }
}

#[test]
fn expression_predicates_match_oracle() {
    const N: u64 = 4_000;
    let rows = oracle_rows(N);
    // where (a2 < 20000 and a4 > 1000) or a5 == a6  — arbitrary expression.
    let pred = Expr::col(1)
        .lt(Expr::lit(20_000))
        .and(Expr::col(3).gt(Expr::lit(1_000)))
        .or(Expr::col(4).eq(Expr::col(5)));
    let expected: Vec<i64> = rows
        .iter()
        .filter(|r| (r[1] < 20_000 && r[3] > 1_000) || r[4] == r[5])
        .map(|r| r[2] as i64)
        .collect();

    for sys in [SystemId::A, SystemId::C] {
        let mut db = Database::new(EngineProfile::system(sys), quiet());
        load_r(&mut db, N);
        let res = db
            .run(&Query::SelectAgg {
                table: "R".into(),
                predicate: Some(QueryPredicate::Expr(pred.clone())),
                agg: AggSpec::sum("a3"),
            })
            .unwrap();
        assert_eq!(res.rows, expected.len() as u64, "{sys:?}");
        assert_eq!(res.value, expected.iter().sum::<i64>() as f64, "{sys:?}");
    }
}

#[test]
fn count_min_max_aggregates() {
    const N: u64 = 2_000;
    let rows = oracle_rows(N);
    let mut db = Database::new(EngineProfile::system(SystemId::C), quiet());
    load_r(&mut db, N);
    let count = db
        .run(&Query::SelectAgg {
            table: "R".into(),
            predicate: None,
            agg: AggSpec::count(),
        })
        .unwrap();
    assert_eq!(count.value, N as f64);
    let min = db
        .run(&Query::SelectAgg {
            table: "R".into(),
            predicate: None,
            agg: AggSpec {
                kind: AggKind::Min,
                col: "a3".into(),
            },
        })
        .unwrap();
    let max = db
        .run(&Query::SelectAgg {
            table: "R".into(),
            predicate: None,
            agg: AggSpec {
                kind: AggKind::Max,
                col: "a3".into(),
            },
        })
        .unwrap();
    let expect_min = rows.iter().map(|r| r[2]).min().unwrap() as f64;
    let expect_max = rows.iter().map(|r| r[2]).max().unwrap() as f64;
    assert_eq!(min.value, expect_min);
    assert_eq!(max.value, expect_max);
}

#[test]
fn point_select_update_insert_round_trip() {
    const N: u64 = 1_000;
    let mut db = Database::new(EngineProfile::system(SystemId::B), quiet());
    db.create_table("T", Schema::paper_relation(40)).unwrap();
    db.load_rows(
        "T",
        (0..N).map(|i| {
            let mut row = vec![0i32; 10];
            row[0] = i as i32; // unique key
            row[1] = (i * 10) as i32;
            row
        }),
    )
    .unwrap();
    db.create_index("T", "a1").unwrap();

    let got = db
        .run(&Query::PointSelect {
            table: "T".into(),
            key_col: "a1".into(),
            key: 123,
            read_col: "a2".into(),
        })
        .unwrap();
    assert_eq!(got.rows, 1);
    assert_eq!(got.value, 1230.0);

    let upd = db
        .run(&Query::UpdateAdd {
            table: "T".into(),
            key_col: "a1".into(),
            key: 123,
            set_col: "a2".into(),
            delta: 5,
        })
        .unwrap();
    assert_eq!(upd.rows, 1);
    assert_eq!(upd.value, 1235.0);

    let mut new_row = vec![0i32; 10];
    new_row[0] = 5_000;
    new_row[1] = 777;
    db.run(&Query::InsertRow {
        table: "T".into(),
        values: new_row,
    })
    .unwrap();
    let got = db
        .run(&Query::PointSelect {
            table: "T".into(),
            key_col: "a1".into(),
            key: 5_000,
            read_col: "a2".into(),
        })
        .unwrap();
    assert_eq!((got.rows, got.value), (1, 777.0));
}

#[test]
fn zero_and_full_selectivity_edge_cases() {
    const N: u64 = 2_000;
    let mut db = Database::new(EngineProfile::system(SystemId::D), quiet());
    load_r(&mut db, N);
    // 0%: empty range.
    let zero = db.run(&Query::range_select_avg("R", 0, 1)).unwrap();
    assert_eq!(zero.rows, 0);
    assert_eq!(zero.value, 0.0);
    // 100%: everything qualifies.
    let full = db.run(&Query::range_select_avg("R", 0, i32::MAX)).unwrap();
    assert_eq!(full.rows, N);
}

#[test]
fn errors_are_reported() {
    let mut db = Database::new(EngineProfile::system(SystemId::A), quiet());
    assert!(db.run(&Query::range_select_avg("NOPE", 0, 1)).is_err());
    db.create_table("T", Schema::paper_relation(20)).unwrap();
    assert!(db.create_table("T", Schema::paper_relation(20)).is_err());
    assert!(db
        .run(&Query::SelectAgg {
            table: "T".into(),
            predicate: None,
            agg: AggSpec::avg("zz"),
        })
        .is_err());
    assert!(
        db.run(&Query::PointSelect {
            table: "T".into(),
            key_col: "a1".into(),
            key: 1,
            read_col: "a2".into(),
        })
        .is_err(),
        "no index on a1 yet"
    );
    assert!(db
        .run(&Query::InsertRow {
            table: "T".into(),
            values: vec![1, 2]
        })
        .is_err());
}

//! Shard-router semantics: merged answers, point-operation routing, grouped
//! merge and the co-partitioning plan check. (The workspace-level
//! `tests/sharding_equivalence.rs` sweeps the full shard-count × exec-mode ×
//! layout grid on the paper workload; these tests pin the router's contract
//! at the memdb layer.)

use wdtg_memdb::testutil::{build_db_with_indexes, rows_for};
use wdtg_memdb::{AggSpec, DbError, PageLayout, Query, QueryPredicate, SystemId};

/// R joined with S on R.a2 = S.a1, both 20-byte records, co-partitionable.
fn join_db(sys: SystemId) -> wdtg_memdb::Database {
    let r = rows_for(2_000, 11);
    // S's a1 covers R's a2 domain (0..512).
    let s: Vec<Vec<i32>> = (0..512).map(|i| vec![i, i * 2, i % 5, 0, 0]).collect();
    let mut db = build_db_with_indexes(
        sys,
        PageLayout::Nsm,
        &[("R", &r), ("S", &s)],
        &[("R", "a1")],
    );
    db.set_shard_key("R", "a2").unwrap();
    db.set_shard_key("S", "a1").unwrap();
    db
}

#[test]
fn merged_answers_match_single_shard_exactly() {
    let selection = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Range {
            col: "a2".into(),
            lo: 100,
            hi: 400,
        }),
        agg: AggSpec::avg("a3"),
    };
    let join = Query::join_avg("R", "S");
    let mut one = join_db(SystemId::C).shard(1).unwrap();
    for n in [2usize, 4, 8, 5] {
        let mut sharded = join_db(SystemId::C).shard(n).unwrap();
        assert_eq!(sharded.n_shards(), n);
        for q in [&selection, &join] {
            let a = one.run(q).unwrap();
            let b = sharded.run(q).unwrap();
            assert_eq!(a.rows, b.rows, "{n} shards: row count diverged");
            assert_eq!(a.value, b.value, "{n} shards: value must be bit-identical");
        }
    }
}

#[test]
fn sharded_grouped_aggregation_merges_per_key() {
    let mut one = join_db(SystemId::C).shard(1).unwrap();
    let mut four = join_db(SystemId::C).shard(4).unwrap();
    let agg = AggSpec::avg("a3");
    let a = one.run_grouped("R", "a4", None, &agg).unwrap();
    let b = four.run_grouped("R", "a4", None, &agg).unwrap();
    assert_eq!(a, b, "grouped answers must merge exactly");
    assert!(!a.is_empty());
}

#[test]
fn point_operations_route_and_broadcast_correctly() {
    let mut one = join_db(SystemId::B).shard(1).unwrap();
    let mut four = join_db(SystemId::B).shard(4).unwrap();
    // Point select through the R.a1 index (unique key): broadcast finds it
    // on exactly one shard.
    let q = Query::PointSelect {
        table: "R".into(),
        key_col: "a1".into(),
        key: 137,
        read_col: "a3".into(),
    };
    let a = one.run(&q).unwrap();
    let b = four.run(&q).unwrap();
    assert_eq!((a.rows, a.value), (b.rows, b.value));
    assert_eq!(a.rows, 1);

    // Update through the index: same rows touched, same resulting value.
    let upd = Query::UpdateAdd {
        table: "R".into(),
        key_col: "a1".into(),
        key: 137,
        set_col: "a3".into(),
        delta: 5,
    };
    let a = one.run(&upd).unwrap();
    let b = four.run(&upd).unwrap();
    assert_eq!((a.rows, a.value), (b.rows, b.value));

    // Insert routes to one shard and remains findable via broadcast.
    let ins = Query::InsertRow {
        table: "R".into(),
        values: vec![100_000, 77, 123, 0, 0],
    };
    assert_eq!(four.run(&ins).unwrap().rows, 1);
    let find = Query::PointSelect {
        table: "R".into(),
        key_col: "a1".into(),
        key: 100_000,
        read_col: "a3".into(),
    };
    let found = four.run(&find).unwrap();
    assert_eq!(found.rows, 1);
    assert_eq!(found.value, 123.0);
    let total_rows: u32 = four
        .shards()
        .iter()
        .map(|s| s.table("R").unwrap().heap.n_pages())
        .sum();
    assert!(total_rows > 0);
}

#[test]
fn totally_skewed_shard_key_still_partitions_and_answers_exactly() {
    // A constant shard key is the worst-case skew: every row routes to one
    // shard and the others stay empty. The re-partition must survive it
    // (each shard's page table is sized for the whole table set, not a
    // uniform 1/n split) and the merged answers must still be exact.
    let rows = rows_for(2_000, 13);
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: Some(QueryPredicate::Range {
            col: "a2".into(),
            lo: 50,
            hi: 300,
        }),
        agg: AggSpec::avg("a3"),
    };
    let mut one = {
        let db = build_db_with_indexes(SystemId::C, PageLayout::Nsm, &[("R", &rows)], &[]);
        db.shard(1).unwrap()
    };
    let mut skewed = {
        let mut db = build_db_with_indexes(SystemId::C, PageLayout::Nsm, &[("R", &rows)], &[]);
        db.set_shard_key("R", "a5").unwrap(); // constant column: total skew
        db.shard(4).unwrap()
    };
    let a = one.run(&q).unwrap();
    let b = skewed.run(&q).unwrap();
    assert_eq!((a.rows, a.value), (b.rows, b.value));
    // All data really did land on one shard; the other three are empty.
    let populated = skewed
        .shards()
        .iter()
        .filter(|s| s.table("R").unwrap().heap.n_pages() > 0)
        .count();
    assert_eq!(populated, 1);
}

#[test]
fn cross_shard_duplicate_point_read_is_refused() {
    // R is sharded on a2; two rows share a1 = 7 but carry a2 values that
    // route to different shards (picked with the router's own hash, inlined
    // here). A 1-shard run would return the first index match; the
    // broadcast cannot know which shard's match that is, so it must refuse
    // instead of returning a shard-order-dependent value.
    let shard_of = |key: i32, n: u64| -> u64 {
        ((key as u32 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % n
    };
    let a2_a = 1;
    let a2_b = (2..1000)
        .find(|&v| shard_of(v, 4) != shard_of(a2_a, 4))
        .expect("some a2 routes elsewhere");
    let mut rows = rows_for(200, 9);
    rows.push(vec![7_000, a2_a, 111, 0, 0]);
    rows.push(vec![7_000, a2_b, 222, 0, 0]);
    let mut db = build_db_with_indexes(
        SystemId::B,
        PageLayout::Nsm,
        &[("R", &rows)],
        &[("R", "a1")],
    );
    db.set_shard_key("R", "a2").unwrap();
    let mut four = db.shard(4).unwrap();
    let q = Query::PointSelect {
        table: "R".into(),
        key_col: "a1".into(),
        key: 7_000,
        read_col: "a3".into(),
    };
    match four.run(&q) {
        Err(DbError::PlanError(msg)) => {
            assert!(
                msg.contains("duplicated across shards"),
                "bad message: {msg}"
            );
        }
        other => panic!("expected PlanError for a cross-shard duplicate read, got {other:?}"),
    }
    // The same duplicates sharded on the lookup column co-locate, and the
    // read stays well defined (first match in load order).
    let mut db = build_db_with_indexes(
        SystemId::B,
        PageLayout::Nsm,
        &[("R", &rows)],
        &[("R", "a1")],
    );
    db.set_shard_key("R", "a1").unwrap();
    let mut four = db.shard(4).unwrap();
    let r = four.run(&q).unwrap();
    assert_eq!(r.rows, 2);
    assert_eq!(r.value, 111.0, "first match in load order");
}

#[test]
fn non_co_partitioned_join_is_rejected_with_a_plan_error() {
    // Shard R on a3 instead of the join key a2: the router must refuse the
    // shard-local join rather than return a silently wrong answer.
    let r = rows_for(500, 3);
    let s: Vec<Vec<i32>> = (0..512).map(|i| vec![i, 0, 0, 0, 0]).collect();
    let mut db = build_db_with_indexes(SystemId::C, PageLayout::Nsm, &[("R", &r), ("S", &s)], &[]);
    db.set_shard_key("R", "a3").unwrap();
    db.set_shard_key("S", "a1").unwrap();
    let mut sharded = db.shard(4).unwrap();
    match sharded.run(&Query::join_avg("R", "S")) {
        Err(DbError::PlanError(msg)) => {
            assert!(msg.contains("co-partition"), "unhelpful message: {msg}");
        }
        other => panic!("expected PlanError, got {other:?}"),
    }
    // One shard never needs co-partitioning.
    let mut db = build_db_with_indexes(SystemId::C, PageLayout::Nsm, &[("R", &r), ("S", &s)], &[]);
    db.set_shard_key("R", "a3").unwrap();
    let mut one = db.shard(1).unwrap();
    assert!(one.run(&Query::join_avg("R", "S")).is_ok());
}

#[test]
fn sharding_preserves_indexes_and_wall_cycles_track_the_max() {
    let mut four = join_db(SystemId::B).shard(4).unwrap();
    // The R.a1 index was recreated per shard: a point select must be
    // index-served (it errors with IndexNotFound otherwise).
    let q = Query::PointSelect {
        table: "R".into(),
        key_col: "a1".into(),
        key: 1,
        read_col: "a2".into(),
    };
    four.run(&q).unwrap();
    let wall = four.wall_cycles();
    let max = four
        .shards()
        .iter()
        .map(|s| s.cpu().cycles())
        .fold(0.0, f64::max);
    assert_eq!(wall, max);
    assert!(wall > 0.0);
}

//! Transaction-layer contracts: snapshot isolation, first-committer-wins,
//! abort atomicity, typed overflow refusal, all-or-nothing mutations under
//! injected faults, and bit-identical WAL crash recovery at every commit
//! boundary.

use proptest::prelude::*;

use wdtg_memdb::testutil::{build_db_with_indexes, rows_for};
use wdtg_memdb::{
    Database, DbError, FaultPlan, FaultSite, PageLayout, Query, Session, SystemId, WalRecord,
};

fn db_with_key_index(n_rows: usize, seed: u64) -> (Database, Vec<Vec<i32>>) {
    let rows = rows_for(n_rows, seed);
    let db = build_db_with_indexes(
        SystemId::C,
        PageLayout::Nsm,
        &[("R", &rows)],
        &[("R", "a1"), ("R", "a2")],
    );
    (db, rows)
}

fn select_a3(key: i32) -> Query {
    Query::PointSelect {
        table: "R".into(),
        key_col: "a1".into(),
        key,
        read_col: "a3".into(),
    }
}

fn add_a3(key: i32, delta: i32) -> Query {
    Query::UpdateAdd {
        table: "R".into(),
        key_col: "a1".into(),
        key,
        set_col: "a3".into(),
        delta,
    }
}

#[test]
fn uncommitted_writes_are_invisible() {
    let (mut db, rows) = db_with_key_index(200, 3);
    let before = db.run(&select_a3(10)).unwrap().value;
    assert_eq!(before, rows[10][2] as f64);

    let t1 = db.begin();
    db.txn_run(t1, &add_a3(10, 7)).unwrap();
    // The writer sees its own staged value…
    assert_eq!(db.txn_run(t1, &select_a3(10)).unwrap().value, before + 7.0);
    // …but autocommit readers and concurrent snapshots do not.
    assert_eq!(db.run(&select_a3(10)).unwrap().value, before);
    let t2 = db.begin();
    assert_eq!(db.txn_run(t2, &select_a3(10)).unwrap().value, before);
    db.abort(t2).unwrap();
    db.commit(t1).unwrap();
    assert_eq!(db.run(&select_a3(10)).unwrap().value, before + 7.0);
}

#[test]
fn snapshot_reads_are_repeatable_across_concurrent_commits() {
    let (mut db, _) = db_with_key_index(200, 4);
    let before = db.run(&select_a3(55)).unwrap().value;

    let reader = db.begin();
    assert_eq!(db.txn_run(reader, &select_a3(55)).unwrap().value, before);

    // A later transaction commits an update to the same row…
    let writer = db.begin();
    db.txn_run(writer, &add_a3(55, 100)).unwrap();
    db.commit(writer).unwrap();
    assert_eq!(db.run(&select_a3(55)).unwrap().value, before + 100.0);

    // …and the long-running reader still sees its snapshot, served off the
    // version chain.
    assert_eq!(db.txn_run(reader, &select_a3(55)).unwrap().value, before);
    db.commit(reader).unwrap();
}

#[test]
fn first_committer_wins_and_loser_is_aborted() {
    let (mut db, _) = db_with_key_index(200, 5);
    let before = db.run(&select_a3(20)).unwrap().value;

    let t1 = db.begin();
    let t2 = db.begin();
    db.txn_run(t1, &add_a3(20, 1)).unwrap();
    db.txn_run(t2, &add_a3(20, 1000)).unwrap();
    db.commit(t1).unwrap();
    match db.commit(t2) {
        Err(DbError::TxnConflict { table, .. }) => assert_eq!(table, "R"),
        other => panic!("expected TxnConflict, got {other:?}"),
    }
    // Only the winner's effect is visible; no lost update, no double apply.
    assert_eq!(db.run(&select_a3(20)).unwrap().value, before + 1.0);
    let stats = db.txn_stats();
    assert_eq!(stats.conflicts, 1);
    assert_eq!(stats.aborted, 1);
    // The loser is gone: further use reports an unknown transaction.
    assert!(matches!(
        db.txn_run(t2, &select_a3(20)),
        Err(DbError::TxnUnknown { .. })
    ));
}

#[test]
fn abort_restores_the_exact_preimage() {
    let (mut db, _) = db_with_key_index(300, 6);
    let digest = db.state_digest();
    let n_before = db.table("R").unwrap().heap.n_records;

    let t = db.begin();
    db.txn_run(t, &add_a3(1, 99)).unwrap();
    db.txn_run(
        t,
        &Query::InsertRow {
            table: "R".into(),
            values: vec![100_000, 1, 2, 3, 4],
        },
    )
    .unwrap();
    db.abort(t).unwrap();

    assert_eq!(db.state_digest(), digest, "abort must leave no trace");
    assert_eq!(db.table("R").unwrap().heap.n_records, n_before);
    assert_eq!(db.run(&select_a3(100_000)).unwrap().rows, 0);
    // The WAL records the abort so recovery discards the staged ops too.
    assert!(matches!(
        db.wal().records().last(),
        Some(WalRecord::Abort { .. })
    ));
}

#[test]
fn update_add_refuses_overflow_with_a_typed_error() {
    let (mut db, _) = db_with_key_index(100, 7);
    // Drive a3 of row 30 to i32::MAX, then push it over the edge.
    let cur = db.run(&select_a3(30)).unwrap().value as i32;
    db.run(&add_a3(30, i32::MAX - cur)).unwrap();
    assert_eq!(db.run(&select_a3(30)).unwrap().value, i32::MAX as f64);

    match db.run(&add_a3(30, 1)) {
        Err(DbError::ValueOverflow { table, col, key }) => {
            assert_eq!((table.as_str(), col.as_str(), key), ("R", "a3", 30));
        }
        other => panic!("expected ValueOverflow, got {other:?}"),
    }
    // The refused update mutated nothing — this is the silent-wraparound
    // regression: the old code stored i32::MIN here.
    assert_eq!(db.run(&select_a3(30)).unwrap().value, i32::MAX as f64);

    // And the negative edge: underflow from i32::MIN (reached in two
    // steps, since the one-shot delta would itself overflow an i32).
    let cur31 = db.run(&select_a3(31)).unwrap().value as i32;
    db.run(&add_a3(31, -cur31)).unwrap();
    db.run(&add_a3(31, i32::MIN)).unwrap();
    assert!(matches!(
        db.run(&add_a3(31, -1)),
        Err(DbError::ValueOverflow { .. })
    ));
    assert_eq!(db.run(&select_a3(31)).unwrap().value, i32::MIN as f64);
}

#[test]
fn transactional_update_add_also_refuses_overflow() {
    let (mut db, _) = db_with_key_index(100, 8);
    let cur = db.run(&select_a3(40)).unwrap().value as i32;
    db.run(&add_a3(40, i32::MAX - cur)).unwrap();
    let t = db.begin();
    assert!(matches!(
        db.txn_run(t, &add_a3(40, 1)),
        Err(DbError::ValueOverflow { .. })
    ));
    // Nothing staged by the refused statement; the txn can still commit.
    db.commit(t).unwrap();
    assert_eq!(db.run(&select_a3(40)).unwrap().value, i32::MAX as f64);
}

#[test]
fn sql_update_reports_overflow_too() {
    let rows = rows_for(100, 9);
    let db = build_db_with_indexes(
        SystemId::C,
        PageLayout::Nsm,
        &[("R", &rows)],
        &[("R", "a1")],
    );
    let mut sess = Session::open(db);
    let cur = sess.sql("SELECT a3 FROM R WHERE a1 = 12").unwrap().value as i32;
    sess.sql(&format!(
        "UPDATE R SET a3 = a3 + {} WHERE a1 = 12",
        i32::MAX - cur
    ))
    .unwrap();
    let err = sess
        .sql("UPDATE R SET a3 = a3 + 1 WHERE a1 = 12")
        .unwrap_err();
    assert!(matches!(err, DbError::ValueOverflow { .. }), "{err}");
}

#[test]
fn session_transactions_route_sql_statements() {
    let rows = rows_for(100, 10);
    let db = build_db_with_indexes(
        SystemId::C,
        PageLayout::Nsm,
        &[("R", &rows)],
        &[("R", "a1")],
    );
    let mut sess = Session::open(db);
    let before = sess.sql("SELECT a3 FROM R WHERE a1 = 5").unwrap().value;

    sess.begin().unwrap();
    sess.sql("UPDATE R SET a3 = a3 + 11 WHERE a1 = 5").unwrap();
    // Inside the transaction the session reads its own staged write…
    assert_eq!(
        sess.sql("SELECT a3 FROM R WHERE a1 = 5").unwrap().value,
        before + 11.0
    );
    // …which is not yet in the committed heap.
    assert_eq!(sess.db().unwrap().state_digest(), {
        // Digest unchanged while staged: compare against a re-read.
        sess.db().unwrap().state_digest()
    });
    sess.commit().unwrap();
    assert_eq!(
        sess.sql("SELECT a3 FROM R WHERE a1 = 5").unwrap().value,
        before + 11.0
    );
    // No dangling transaction on the session.
    assert!(sess.current_txn().is_none());
    assert!(sess.commit().is_err(), "double commit must be refused");
}

/// Builds a database, commits `k` transactions (each a mix of updates and
/// inserts), and returns the digests after load and after every commit,
/// plus the final WAL.
fn committed_history(k: usize) -> (Vec<u64>, Vec<WalRecord>) {
    let (mut db, _) = db_with_key_index(250, 11);
    let mut digests = vec![db.state_digest()];
    for i in 0..k {
        let t = db.begin();
        db.txn_run(t, &add_a3((i % 50) as i32, i as i32 + 1))
            .unwrap();
        if i % 2 == 0 {
            db.txn_run(
                t,
                &Query::InsertRow {
                    table: "R".into(),
                    values: vec![10_000 + i as i32, i as i32, 1, 2, 3],
                },
            )
            .unwrap();
        }
        db.commit(t).unwrap();
        digests.push(db.state_digest());
    }
    (digests, db.wal().records().to_vec())
}

#[test]
fn wal_replay_is_bit_identical_at_every_commit_boundary() {
    let k = 12;
    let (digests, wal) = committed_history(k);
    // Simulate a crash after each commit boundary: replay the log up to
    // `c` commits into a freshly-built database and demand the exact
    // digest the live database had at that point.
    for (c, digest) in digests.iter().enumerate() {
        let (mut fresh, _) = db_with_key_index(250, 11);
        let applied = fresh.replay_wal(&wal, c).unwrap();
        assert_eq!(applied, c);
        assert_eq!(
            fresh.state_digest(),
            *digest,
            "recovery to commit {c} diverged"
        );
    }
}

#[test]
fn wal_replay_discards_uncommitted_tail() {
    let (mut db, _) = db_with_key_index(250, 12);
    let base = db.state_digest();
    let t1 = db.begin();
    db.txn_run(t1, &add_a3(7, 5)).unwrap();
    db.commit(t1).unwrap();
    let committed = db.state_digest();
    // A transaction that staged ops into the WAL but never committed — its
    // records are the torn tail a crash leaves behind.
    let t2 = db.begin();
    db.txn_run(t2, &add_a3(8, 5)).unwrap();
    db.txn_run(
        t2,
        &Query::InsertRow {
            table: "R".into(),
            values: vec![99_999, 0, 0, 0, 0],
        },
    )
    .unwrap();
    let wal = db.wal().records().to_vec();

    let (mut fresh, _) = db_with_key_index(250, 12);
    assert_eq!(fresh.state_digest(), base);
    fresh.replay_wal(&wal, 1).unwrap();
    assert_eq!(fresh.state_digest(), committed, "tail must be discarded");
    assert_eq!(fresh.run(&select_a3(99_999)).unwrap().rows, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All-or-nothing updates under page-checksum faults: `a2` is
    /// non-unique, so one UpdateAdd touches several rows; a fault landing
    /// mid-scan must leave *zero* rows mutated (the torn-multi-row-update
    /// regression), and a fault-free outcome must apply to all of them.
    #[test]
    fn faulted_updates_mutate_nothing(
        seed in 0u64..(1u64 << 40),
        rate_sel in 0usize..3,
        key in 0i32..64,
    ) {
        let rate = [0.02, 0.1, 0.4][rate_sel];
        let (mut db, rows) = db_with_key_index(400, 13);
        let digest = db.state_digest();
        let matches = rows.iter().filter(|r| r[1] == key).count() as u64;
        db.set_fault_plan(
            FaultPlan::disabled()
                .with_seed(seed)
                .with_rate(FaultSite::PageChecksum, rate)
                .with_rate(FaultSite::BufpoolFetch, rate / 2.0),
        );
        let r = db.run(&Query::UpdateAdd {
            table: "R".into(),
            key_col: "a2".into(),
            key,
            set_col: "a3".into(),
            delta: 3,
        });
        db.set_fault_plan(FaultPlan::disabled());
        match r {
            Ok(got) => prop_assert_eq!(got.rows, matches),
            Err(DbError::IoFault { .. } | DbError::PageCorrupt { .. }) => {
                prop_assert_eq!(
                    db.state_digest(), digest,
                    "faulted update left a partial mutation behind"
                );
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    /// All-or-nothing inserts under arena-allocation and checksum faults:
    /// a failed insert must leave no dangling un-indexed record (the
    /// torn-write regression) — row count, digest and index lookups all
    /// agree the row does not exist.
    #[test]
    fn faulted_inserts_leave_no_dangling_record(
        seed in 0u64..(1u64 << 40),
        rate_sel in 0usize..3,
    ) {
        let rate = [0.05, 0.3, 0.9][rate_sel];
        let (mut db, _) = db_with_key_index(300, 14);
        let digest = db.state_digest();
        let n = db.table("R").unwrap().heap.n_records;
        db.set_fault_plan(
            FaultPlan::disabled()
                .with_seed(seed)
                .with_rate(FaultSite::ArenaAlloc, rate)
                .with_rate(FaultSite::PageChecksum, rate / 3.0),
        );
        let r = db.run(&Query::InsertRow {
            table: "R".into(),
            values: vec![77_777, 5, 6, 7, 8],
        });
        db.set_fault_plan(FaultPlan::disabled());
        match r {
            Ok(_) => {
                prop_assert_eq!(db.table("R").unwrap().heap.n_records, n + 1);
                prop_assert_eq!(db.run(&select_a3(77_777)).unwrap().rows, 1);
            }
            Err(DbError::ArenaExhausted { .. }
                | DbError::IoFault { .. }
                | DbError::PageCorrupt { .. }) => {
                prop_assert_eq!(db.table("R").unwrap().heap.n_records, n);
                prop_assert_eq!(db.state_digest(), digest, "torn insert");
                prop_assert_eq!(db.run(&select_a3(77_777)).unwrap().rows, 0);
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    /// Concurrent-writer interleavings never corrupt the database: randomly
    /// interleaved transactions (overlapping snapshots, row-disjoint or
    /// colliding write sets) end in a state equal to applying exactly the
    /// committed transactions' effects, and WAL recovery reproduces it.
    #[test]
    fn interleaved_writers_preserve_committed_effects(
        seed in 0u64..(1u64 << 40),
        n_txns in 2usize..6,
    ) {
        let (mut db, _) = db_with_key_index(200, 15);
        // Deterministically derive each txn's target row from the seed;
        // collisions across txns are common by construction (mod 8).
        let keys: Vec<i32> = (0..n_txns)
            .map(|i| ((seed >> (i * 5)) % 8) as i32)
            .collect();
        let before: Vec<f64> = keys
            .iter()
            .map(|&k| db.run(&select_a3(k)).unwrap().value)
            .collect();

        // Begin all, stage all, then commit in order: every pair overlaps,
        // so later committers writing a winner's row must conflict.
        let tids: Vec<_> = (0..n_txns).map(|_| db.begin()).collect();
        for (i, &tid) in tids.iter().enumerate() {
            db.txn_run(tid, &add_a3(keys[i], 1)).unwrap();
        }
        let mut expected: std::collections::BTreeMap<i32, f64> = Default::default();
        for (i, &tid) in tids.iter().enumerate() {
            match db.commit(tid) {
                Ok(_) => {
                    *expected.entry(keys[i]).or_insert(before[i]) += 1.0;
                }
                Err(DbError::TxnConflict { .. }) => {
                    // First committer on this key must already have won.
                    prop_assert!(expected.contains_key(&keys[i]));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        for (&k, &want) in &expected {
            prop_assert_eq!(db.run(&select_a3(k)).unwrap().value, want);
        }
        // Recovery replays exactly the committed transactions.
        let wal = db.wal().records().to_vec();
        let (mut fresh, _) = db_with_key_index(200, 15);
        fresh.replay_wal(&wal, db.wal().commit_count()).unwrap();
        prop_assert_eq!(fresh.state_digest(), db.state_digest());
    }
}

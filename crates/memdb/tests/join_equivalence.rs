//! Join-strategy equivalence: every join algorithm is an execution
//! strategy, never a semantics change. The same equijoin must return
//! identical results across {HashJoin, PartitionedHashJoin, IndexNlJoin} ×
//! {Row, Batch} × {Nsm, Pax} — 12 configurations of the same query — for
//! arbitrary data, duplicate keys, skew and empty inputs.
//!
//! The aggregate values are sums of `i32`s accumulated in `f64`, which is
//! exact (integers far below 2^53), so strategies may emit matches in any
//! order and the comparison can still demand bit-identical answers.

use proptest::prelude::*;
use wdtg_memdb::testutil::{build_db_with_indexes, measure, rows_for};
use wdtg_memdb::{ExecMode, JoinAlgo, PageLayout, Query, SystemId};
use wdtg_sim::Event;

const ALGOS: [JoinAlgo; 3] = [
    JoinAlgo::Hash,
    JoinAlgo::PartitionedHash,
    JoinAlgo::IndexNestedLoop,
];

/// Runs R ⋈ S under all 12 (algorithm, mode, layout) configurations and
/// asserts identical row counts and aggregate values.
fn assert_strategies_agree(sys: SystemId, r: &[Vec<i32>], s: &[Vec<i32>]) {
    let q = Query::join_avg("R", "S");
    let mut oracle: Option<(u64, f64, String)> = None;
    for algo in ALGOS {
        for mode in [ExecMode::Row, ExecMode::Batch] {
            for layout in PageLayout::ALL {
                let mut db =
                    build_db_with_indexes(sys, layout, &[("R", r), ("S", s)], &[("S", "a1")])
                        .with_exec_mode(mode)
                        .with_join_algo(algo);
                let res = db.run(&q).expect("join runs");
                let label = format!("{sys:?} {algo:?} {mode:?} {layout:?}");
                match &oracle {
                    None => oracle = Some((res.rows, res.value, label)),
                    Some((rows, value, base)) => {
                        assert_eq!(res.rows, *rows, "{label}: row count differs from {base}");
                        assert!(
                            (res.value - value).abs() < 1e-9,
                            "{label}: value {} differs from {base}'s {value}",
                            res.value
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn join_strategies_agree_on_paper_shaped_data() {
    // R.a2 uniform over S's key domain, like the paper's SJ: every R row
    // finds matches, chains carry duplicates.
    let r = rows_for(3_000, 29);
    let s: Vec<Vec<i32>> = (0..512).map(|i| vec![i, i * 3, i * 7, 0, 0]).collect();
    for sys in SystemId::ALL {
        assert_strategies_agree(sys, &r, &s);
    }
}

#[test]
fn join_strategies_agree_on_skewed_and_empty_inputs() {
    // Heavy skew: most R rows share one key, so one partition carries
    // nearly everything and chains are long.
    let skewed_r: Vec<Vec<i32>> = (0..2_000)
        .map(|i| vec![i, if i % 10 == 0 { i % 64 } else { 7 }, i * 3, 0, 0])
        .collect();
    let s: Vec<Vec<i32>> = (0..64).map(|i| vec![i, i, i * 5, 0, 0]).collect();
    assert_strategies_agree(SystemId::C, &skewed_r, &s);

    // Empty build side: zero matches everywhere.
    let r = rows_for(500, 31);
    let empty: Vec<Vec<i32>> = Vec::new();
    assert_strategies_agree(SystemId::A, &r, &empty);
    // Empty probe side.
    assert_strategies_agree(SystemId::D, &empty, &s);
}

#[test]
fn partitioned_join_cuts_l2_data_misses_on_a_streaming_join() {
    // The operator's reason to exist: at a scale where the naive join's
    // hash table (build 25 K rows → directory + entry pool ≈ 860 KB,
    // well past the 512 KB L2) makes every probe a cold pointer chase,
    // the partitioned join must take strictly fewer simulated L2 data
    // misses — while charging strictly more retired instructions
    // (partitioning is not free; the simulator must see the trade, not
    // just the win). Like the paper's SJ, R.a2 is uniform over S's whole
    // key domain, so probes land all over the directory.
    const S_ROWS: i32 = 25_000;
    let r: Vec<Vec<i32>> = (0..50_000)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            vec![i, (x % S_ROWS as u64) as i32, (x % 10_000) as i32, 0, 0]
        })
        .collect();
    let s: Vec<Vec<i32>> = (0..S_ROWS).map(|i| vec![i, i * 3, i * 7, 0, 0]).collect();
    let q = Query::join_avg("R", "S");
    let mut results = Vec::new();
    for algo in [JoinAlgo::Hash, JoinAlgo::PartitionedHash] {
        let mut db =
            build_db_with_indexes(SystemId::C, PageLayout::Nsm, &[("R", &r), ("S", &s)], &[])
                .with_join_algo(algo);
        let (res, delta) = measure(&mut db, &q);
        results.push((
            res,
            delta.counters.total(Event::SimL2DataMiss),
            delta.counters.total(Event::InstRetired),
        ));
    }
    let (hash, part) = (&results[0], &results[1]);
    assert_eq!(hash.0.rows, part.0.rows, "strategies must agree");
    assert!(
        part.1 < hash.1,
        "partitioned join must cut L2 data misses: hash {} vs partitioned {}",
        hash.1,
        part.1
    );
    assert!(
        part.2 > hash.2,
        "partitioning must charge extra instructions: hash {} vs partitioned {}",
        hash.2,
        part.2
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized joins: identical answers across all 12 strategy
    /// configurations on arbitrary data (duplicate keys on both sides,
    /// keys that miss entirely, any of the four systems).
    #[test]
    fn random_joins_agree_across_all_strategies(
        r_rows in proptest::collection::vec(
            proptest::collection::vec(-10i32..10, 5..=5), 1..100),
        s_rows in proptest::collection::vec(
            proptest::collection::vec(-10i32..10, 5..=5), 1..60),
        sys_pick in 0usize..4,
    ) {
        assert_strategies_agree(SystemId::ALL[sys_pick], &r_rows, &s_rows);
    }
}

//! "No wrong answers under chaos": property tests that drive queries under
//! randomized fault-injection plans and resource budgets and demand the
//! engine's one safety contract — every run returns either the bit-identical
//! fault-free answer or a typed `DbError`. Never a panic, never silently
//! wrong rows. Outcomes must also be deterministic: rebuilding the same
//! database and re-running the same plan reproduces the same result,
//! including which queries fault.

use proptest::prelude::*;

use wdtg_memdb::testutil::{build_db_layout, rows_for};
use wdtg_memdb::{
    DbError, ExecMode, FaultPlan, JoinAlgo, PageLayout, Query, ResourceBudget, ShardedDatabase,
    SystemId,
};

/// The error classes chaos is allowed to surface. Anything else —
/// `PlanError`, `Internal`, schema errors — means an injected fault was
/// translated into the wrong failure, which is a bug.
fn is_chaos_error(e: &DbError) -> bool {
    match e {
        DbError::IoFault { .. }
        | DbError::PageCorrupt { .. }
        | DbError::ArenaExhausted { .. }
        | DbError::BudgetExceeded { .. }
        | DbError::Cancelled
        | DbError::ShardFault { .. } => true,
        DbError::ShardFailed { cause, .. } => is_chaos_error(cause),
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scalar aggregation under uniform fault plans, swept across execution
    /// modes, page layouts and shard counts: the answer is bit-identical to
    /// the fault-free run or a typed chaos error, and the outcome is
    /// reproducible from a fresh build.
    #[test]
    fn chaos_never_corrupts_scan_answers(
        seed in 0u64..(1u64 << 48),
        rate_sel in 0usize..3,
        mode_sel in 0usize..2,
        layout_sel in 0usize..2,
        shards in 1usize..4,
        n_rows in 300usize..900,
    ) {
        let rate = [1e-3, 1e-2, 0.05][rate_sel];
        let mode = [ExecMode::Row, ExecMode::Batch][mode_sel];
        let layout = [PageLayout::Nsm, PageLayout::Pax][layout_sel];
        let rows = rows_for(n_rows, 11);
        let q = Query::range_select_avg("R", 10, 400);

        let build = |rows: &[Vec<i32>]| -> ShardedDatabase {
            let mut db = build_db_layout(SystemId::C, layout, &[("R", rows)], false);
            db.set_exec_mode(mode);
            db.shard(shards).unwrap()
        };

        let expected = build(&rows).run(&q).unwrap();

        let plan = FaultPlan::uniform(seed, rate);
        let run_chaos = |rows: &[Vec<i32>]| {
            let mut db = build(rows);
            db.set_fault_plan(plan);
            let r = db.run(&q);
            (r, db.robustness_stats(), db.router_stats())
        };
        let (r1, stats1, router1) = run_chaos(&rows);
        let (r2, stats2, router2) = run_chaos(&rows);
        prop_assert_eq!(&r1, &r2, "chaos outcome must be bit-reproducible");
        prop_assert_eq!(stats1, stats2, "fault counters must be reproducible");
        prop_assert_eq!(router1, router2, "retry counters must be reproducible");
        match r1 {
            Ok(got) => {
                prop_assert_eq!(got.rows, expected.rows, "wrong row count under chaos");
                prop_assert_eq!(
                    got.value.to_bits(),
                    expected.value.to_bits(),
                    "wrong answer under chaos"
                );
            }
            Err(e) => prop_assert!(is_chaos_error(&e), "unexpected error class: {e:?}"),
        }
    }

    /// The partitioned join under an arena budget either fits (no
    /// downgrade), degrades to the naive join (exactly one downgrade), or
    /// surfaces a typed breach — and every completed run produces the
    /// bit-identical answer, in both execution modes (batch mode exercises
    /// the in-flight-batch rescue).
    #[test]
    fn join_downgrade_preserves_answers(
        mode_sel in 0usize..2,
        budget_kb in 3u64..40,
        n_build in 200usize..400,
    ) {
        let mode = [ExecMode::Row, ExecMode::Batch][mode_sel];
        let rows = rows_for(1200, 3);
        let srows = rows_for(n_build, 5);
        let build = || {
            let mut db = build_db_layout(
                SystemId::C,
                PageLayout::Nsm,
                &[("R", &rows), ("S", &srows)],
                false,
            );
            db.set_join_algo(JoinAlgo::PartitionedHash);
            db.set_exec_mode(mode);
            db
        };
        let q = Query::join_avg("R", "S");
        let expected = build().run(&q).unwrap();

        let mut db = build();
        db.set_budget(ResourceBudget::unlimited().with_max_arena_bytes(budget_kb * 1024));
        let got = db.run(&q);
        match got {
            Ok(got) => {
                prop_assert_eq!(
                    got.value.to_bits(),
                    expected.value.to_bits(),
                    "degraded join changed the answer"
                );
                prop_assert_eq!(got.rows, expected.rows);
                prop_assert!(
                    db.robustness_stats().join_downgrades <= 1,
                    "a query downgrades at most once"
                );
            }
            Err(e) => prop_assert!(is_chaos_error(&e), "unexpected error class: {e:?}"),
        }
    }

    /// A cycle budget either lets the query finish with the exact answer or
    /// stops it with a typed breach — never a different answer.
    #[test]
    fn cycle_budgets_stop_cleanly(
        budget in 1_000u64..2_000_000,
        mode_sel in 0usize..2,
    ) {
        let mode = [ExecMode::Row, ExecMode::Batch][mode_sel];
        let rows = rows_for(3000, 7);
        let build = || {
            let mut db = build_db_layout(SystemId::C, PageLayout::Nsm, &[("R", &rows)], false);
            db.set_exec_mode(mode);
            db
        };
        let q = Query::range_select_avg("R", 10, 400);
        let expected = build().run(&q).unwrap();

        let mut db = build();
        db.set_budget(ResourceBudget::unlimited().with_max_cycles(budget));
        match db.run(&q) {
            Ok(got) => {
                prop_assert_eq!(got.value.to_bits(), expected.value.to_bits());
                prop_assert_eq!(got.rows, expected.rows);
            }
            Err(DbError::BudgetExceeded { resource, used, limit }) => {
                prop_assert_eq!(resource, "cycles");
                prop_assert!(used > limit);
                prop_assert_eq!(db.robustness_stats().budget_stops, 1);
            }
            Err(other) => panic!("expected success or a cycles breach, got {other:?}"),
        }
    }
}

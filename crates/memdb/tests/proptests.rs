//! Property-based tests: storage structures against model oracles, query
//! answers against naive evaluation, for arbitrary data.

use std::collections::BTreeMap;

use proptest::prelude::*;
use wdtg_memdb::testutil::quiet;
use wdtg_memdb::{
    index::btree::BTree, index::hash::JoinHashTable, AggSpec, Database, EngineProfile, Expr, Query,
    QueryPredicate, Schema, SimArena, SystemId,
};
use wdtg_sim::segment;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// B+tree == BTreeMap<i32, Vec<u64>> for arbitrary inserts + range scans.
    #[test]
    fn btree_matches_model(
        keys in proptest::collection::vec(-1000i32..1000, 1..800),
        lo in -1100i32..1100,
        span in 0i32..500,
    ) {
        let mut arena = SimArena::new(segment::INDEX, 256 << 20);
        let mut tree = BTree::new(&mut arena);
        let mut model: BTreeMap<i32, Vec<u64>> = BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(&mut arena, k, i as u64);
            model.entry(k).or_default().push(i as u64);
        }
        let hi = lo.saturating_add(span);
        let got = tree.collect_range(&arena, lo, hi);
        let mut want: Vec<(i32, u64)> = Vec::new();
        for (&k, vs) in model.range(lo..hi) {
            for &v in vs {
                want.push((k, v));
            }
        }
        // Key order must match; within equal keys insertion order is
        // unspecified, so compare as multisets per key.
        prop_assert_eq!(got.len(), want.len());
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got_sorted, want);
    }

    /// Hash table == HashMap model for arbitrary inserts.
    #[test]
    fn hash_table_matches_model(keys in proptest::collection::vec(-50i32..50, 1..300)) {
        let mut arena = SimArena::new(segment::INDEX, 64 << 20);
        let mut table = JoinHashTable::new(&mut arena, keys.len() as u64);
        let mut model: BTreeMap<i32, Vec<u64>> = BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            table.insert(&mut arena, k, i as u64);
            model.entry(k).or_default().push(i as u64);
        }
        for (&k, vs) in &model {
            let mut got = table.get_all(&arena, k);
            got.sort_unstable();
            let mut want = vs.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want, "key {}", k);
        }
    }

    /// Range-selection answers equal naive evaluation for random tables,
    /// bounds, and engine profiles — sequential and indexed plans alike.
    #[test]
    fn range_select_matches_naive_oracle(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100i32..100, 5..=5), 1..200),
        lo in -120i32..120,
        span in 0i32..120,
        sys_pick in 0usize..4,
        with_index in any::<bool>(),
    ) {
        let hi = lo.saturating_add(span);
        let sys = SystemId::ALL[sys_pick];
        let mut db = Database::new(EngineProfile::system(sys), quiet());
        db.create_table("T", Schema::paper_relation(20)).unwrap();
        db.load_rows("T", rows.iter().cloned()).unwrap();
        if with_index {
            db.create_index("T", "a2").unwrap();
        }
        let res = db.run(&Query::range_select_avg("T", lo, hi)).unwrap();
        let selected: Vec<i64> = rows
            .iter()
            .filter(|r| r[1] > lo && r[1] < hi)
            .map(|r| r[2] as i64)
            .collect();
        prop_assert_eq!(res.rows, selected.len() as u64);
        if !selected.is_empty() {
            let want = selected.iter().sum::<i64>() as f64 / selected.len() as f64;
            prop_assert!((res.value - want).abs() < 1e-9);
        }
    }

    /// Arbitrary expression predicates agree with direct Expr evaluation.
    #[test]
    fn expr_filter_matches_direct_eval(
        rows in proptest::collection::vec(
            proptest::collection::vec(-20i32..20, 5..=5), 1..150),
        c1 in 0usize..5, c2 in 0usize..5, k in -20i32..20,
    ) {
        let pred = Expr::col(c1).ge(Expr::lit(k)).and(Expr::col(c2).ne(Expr::lit(0)));
        let mut db = Database::new(EngineProfile::system(SystemId::C), quiet());
        db.create_table("T", Schema::paper_relation(20)).unwrap();
        db.load_rows("T", rows.iter().cloned()).unwrap();
        let res = db.run(&Query::SelectAgg {
            table: "T".into(),
            predicate: Some(QueryPredicate::Expr(pred.clone())),
            agg: AggSpec::count(),
        }).unwrap();
        let want = rows.iter().filter(|r| pred.eval_bool(r)).count() as u64;
        prop_assert_eq!(res.rows, want);
    }

    /// The join answer equals the nested-loop oracle for random inputs.
    #[test]
    fn hash_join_matches_nested_loop_oracle(
        r_rows in proptest::collection::vec(
            proptest::collection::vec(-10i32..10, 5..=5), 1..100),
        s_rows in proptest::collection::vec(
            proptest::collection::vec(-10i32..10, 5..=5), 1..60),
    ) {
        let mut db = Database::new(EngineProfile::system(SystemId::B), quiet());
        db.create_table("R", Schema::paper_relation(20)).unwrap();
        db.create_table("S", Schema::paper_relation(20)).unwrap();
        db.load_rows("R", r_rows.iter().cloned()).unwrap();
        db.load_rows("S", s_rows.iter().cloned()).unwrap();
        let res = db.run(&Query::join_avg("R", "S")).unwrap();
        let mut matches = 0u64;
        let mut sum = 0i64;
        for r in &r_rows {
            for s in &s_rows {
                if r[1] == s[0] {
                    matches += 1;
                    sum += r[2] as i64;
                }
            }
        }
        prop_assert_eq!(res.rows, matches);
        if matches > 0 {
            prop_assert!((res.value - sum as f64 / matches as f64).abs() < 1e-9);
        }
    }

    /// Determinism: running the same query twice on identically-built
    /// databases produces identical cycle counts and counters.
    #[test]
    fn identical_runs_are_cycle_exact(seed in 0u64..1000) {
        let build = || {
            let mut db = Database::new(EngineProfile::system(SystemId::C), quiet());
            db.create_table("T", Schema::paper_relation(20)).unwrap();
            db.load_rows("T", (0..500u64).map(|i| {
                let x = i.wrapping_mul(seed.wrapping_add(1)).wrapping_mul(2654435761);
                vec![(x % 100) as i32, (x % 40) as i32, (x % 7) as i32, 0, 0]
            })).unwrap();
            db
        };
        let q = Query::range_select_avg("T", 5, 30);
        let mut a = build();
        let mut b = build();
        a.run(&q).unwrap();
        b.run(&q).unwrap();
        prop_assert_eq!(a.cpu().cycles(), b.cpu().cycles());
        prop_assert_eq!(
            a.cpu().counters().total(wdtg_sim::Event::InstRetired),
            b.cpu().counters().total(wdtg_sim::Event::InstRetired)
        );
    }
}

//! Robustness in one sitting: inject deterministic faults, watch the
//! engine absorb them, and watch guardrails stop runaway queries with
//! typed errors instead of panics.
//!
//! Three demonstrations, each asserting its contract so running the
//! example checks the claims:
//!
//! 1. A sharded scan under a seeded `FaultPlan` that fails shard
//!    executions 30% of the time. The router retries transient failures
//!    with bounded, deterministically-charged backoff, so the query still
//!    returns the bit-identical fault-free answer — and the retry counters
//!    prove faults actually fired (the seed is fixed, so they always do).
//! 2. The partitioned hash join under a tight arena budget. Instead of
//!    failing, the engine downgrades to the naive hash join (recording the
//!    downgrade) and produces the bit-identical answer.
//! 3. A cycle budget breach: the query stops cooperatively at a batch
//!    boundary with `DbError::BudgetExceeded`, and disarming the budget
//!    recovers.
//!
//! Run with: `cargo run --release --example chaos`

use wdtg_memdb::{
    Database, DbError, EngineProfile, FaultPlan, FaultSite, JoinAlgo, Query, ResourceBudget,
    Schema, SystemId,
};
use wdtg_sim::{CpuConfig, InterruptCfg};

fn build_db() -> Database {
    let mut db = Database::new(
        EngineProfile::system(SystemId::C),
        CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled()),
    );
    db.ctx.instrument = false;
    db.create_table("R", Schema::paper_relation(20)).unwrap();
    db.load_rows(
        "R",
        (0..20_000u64).map(|i| {
            let x = i.wrapping_mul(0x9e37_79b9);
            vec![i as i32, (x % 2_000) as i32 + 1, (x % 10_000) as i32, 0, 0]
        }),
    )
    .unwrap();
    db.create_table("S", Schema::paper_relation(20)).unwrap();
    db.load_rows(
        "S",
        (0..1_500u64).map(|i| {
            let x = i.wrapping_mul(0x85eb_ca6b);
            vec![i as i32 + 1, 0, (x % 10_000) as i32, 0, 0]
        }),
    )
    .unwrap();
    db.ctx.instrument = true;
    db
}

fn main() {
    let q = Query::range_select_avg("R", 900, 1101);

    // -- 1. Shard faults absorbed by bounded retry --------------------
    let expected = build_db().shard(4).unwrap().run(&q).unwrap();
    let mut sharded = build_db().shard(4).unwrap();
    sharded.set_fault_plan(
        FaultPlan::disabled()
            .with_rate(FaultSite::ShardExec, 0.3)
            .with_seed(4),
    );
    let got = sharded
        .run(&q)
        .expect("retries must absorb a 30% fault rate");
    let faults = sharded.robustness_stats().shard_exec_faults;
    let rs = sharded.router_stats();
    println!(
        "sharded scan under 30% shard faults: avg {:.3} over {} rows \
         ({} faults fired, {} retries, {} shard runs recovered)",
        got.value, got.rows, faults, rs.retries, rs.recovered
    );
    assert_eq!(
        got, expected,
        "retried run must return the fault-free answer"
    );
    assert!(faults > 0, "the seeded plan should actually fire here");
    assert_eq!(rs.failed, 0);

    // -- 2. Budget pressure degrades the join, not the answer ---------
    let jq = Query::join_avg("R", "S");
    let mut db = build_db();
    db.set_join_algo(JoinAlgo::PartitionedHash);
    let baseline = db.run(&jq).unwrap();
    assert_eq!(db.robustness_stats().join_downgrades, 0);

    db.set_budget(ResourceBudget::unlimited().with_max_arena_bytes(32 * 1024));
    let degraded = db.run(&jq).expect("the join must degrade, not fail");
    println!(
        "partitioned join under a 32 KiB arena budget: avg {:.3} over {} rows \
         ({} downgrade to the naive join)",
        degraded.value,
        degraded.rows,
        db.robustness_stats().join_downgrades
    );
    assert_eq!(degraded.value.to_bits(), baseline.value.to_bits());
    assert_eq!(degraded.rows, baseline.rows);
    assert_eq!(db.robustness_stats().join_downgrades, 1);

    // -- 3. Cycle budgets stop queries with typed errors --------------
    let mut db = build_db();
    db.set_budget(ResourceBudget::unlimited().with_max_cycles(50_000));
    match db.run(&q) {
        Err(DbError::BudgetExceeded {
            resource,
            used,
            limit,
        }) => println!(
            "cycle guardrail: stopped after {used} simulated cycles \
             (limit {limit}, resource {resource:?})"
        ),
        other => panic!("expected a cycles budget breach, got {other:?}"),
    }
    db.set_budget(ResourceBudget::unlimited());
    let recovered = db.run(&q).expect("disarming the budget must recover");
    println!(
        "budget disarmed: avg {:.3} over {} rows — same engine, no restart needed",
        recovered.value, recovered.rows
    );
}

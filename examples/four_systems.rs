//! Four differently engineered DBMSs, same query, same processor — the
//! paper's core experiment in miniature.
//!
//! System A is lean and compiled (fewest instructions, resource-bound),
//! System B is cache-conscious (prefetch hides L2 data misses), Systems C
//! and D interpret and materialize (instruction-cache and branch bound).
//!
//! Run with: `cargo run --release --example four_systems`

use wdtg_core::methodology::{measure_query, Methodology};
use wdtg_core::tables::{pct, TextTable};
use wdtg_memdb::SystemId;
use wdtg_sim::CpuConfig;
use wdtg_workloads::{MicroQuery, Scale};

fn main() {
    let scale = Scale::tiny();
    let cfg = CpuConfig::pentium_ii_xeon();
    let m = Methodology::default();

    println!(
        "10% sequential range selection over R ({} rows, 100-byte records)\n",
        scale.r_records
    );
    let mut table = TextTable::new([
        "system",
        "instr/record",
        "cycles/record",
        "CPI",
        "computation",
        "memory",
        "branch",
        "resource",
    ]);
    for sys in SystemId::ALL {
        let meas = measure_query(
            sys,
            MicroQuery::SequentialRangeSelection,
            0.1,
            scale,
            &cfg,
            &m,
        )
        .expect("measurement runs");
        let f = meas.truth.four_way();
        table.row([
            sys.name().to_string(),
            format!("{:.0}", meas.instructions_per_record()),
            format!("{:.0}", meas.cycles_per_record()),
            format!("{:.2}", meas.truth.cpi()),
            pct(f.computation),
            pct(f.memory),
            pct(f.branch),
            pct(f.resource),
        ]);
    }
    println!("{table}");
    println!("Observations reproduced from the paper (§5.1/§5.3):");
    println!(" * System A retires the fewest instructions per record but pays the");
    println!("   highest resource-stall share;");
    println!(" * B/C/D stall on memory and branches; roughly half of all time is stalls.");
}

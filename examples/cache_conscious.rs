//! Using the harness the way the paper's conclusions suggest: evaluate a
//! cache-conscious redesign *before* building it.
//!
//! Part 1 takes System C (interpreted, no prefetching) and applies the two
//! fixes the paper's findings point to — scan prefetching to attack T_L2D
//! (§5.2.1) and compiled predicate evaluation to shrink the instruction
//! footprint (§5.2.2) — then measures each variant on the same simulated
//! processor.
//!
//! Part 2 goes after the data-stall term itself with the storage layout the
//! paper's lineage arrived at: PAX (Ailamaki et al., VLDB 2001). The same
//! narrow-projection scan runs over NSM and PAX pages and the example
//! *asserts* the miss-count ordering — fewer simulated L2 data misses under
//! PAX — so running it is checking the claim, not reading about it.
//!
//! Run with: `cargo run --release --example cache_conscious`

use wdtg_core::methodology::{measure_query_with, Methodology};
use wdtg_core::tables::{pct, TextTable};
use wdtg_memdb::{EngineProfile, EvalMode, PageLayout, SystemId};
use wdtg_sim::{CpuConfig, Event, Mode};
use wdtg_workloads::{MicroQuery, Scale};

fn main() {
    let scale = Scale::tiny();
    let cfg = CpuConfig::pentium_ii_xeon();
    let m = Methodology::default();

    let baseline = EngineProfile::system(SystemId::C);

    let mut prefetching = EngineProfile::system(SystemId::C);
    prefetching.prefetch_lines_ahead = 24;

    let mut compiled = EngineProfile::system(SystemId::C);
    compiled.eval_mode = EvalMode::Compiled;

    let mut both = EngineProfile::system(SystemId::C);
    both.prefetch_lines_ahead = 24;
    both.eval_mode = EvalMode::Compiled;

    let variants = [
        ("System C (baseline)", baseline),
        ("+ scan prefetch", prefetching),
        ("+ compiled predicates", compiled),
        ("+ both", both),
    ];

    println!("Attacking System C's stalls (10% sequential range selection):\n");
    let mut table = TextTable::new([
        "variant",
        "cycles/record",
        "T_L2D share",
        "T_L1I share",
        "T_B share",
        "speedup",
    ]);
    let mut base_cycles = None;
    for (name, profile) in variants {
        let meas = measure_query_with(
            profile,
            MicroQuery::SequentialRangeSelection,
            0.1,
            scale,
            &cfg,
            &m,
        )
        .expect("measurement runs");
        let total = meas.truth.component_sum().max(1e-9);
        let cyc = meas.cycles_per_record();
        let base = *base_cycles.get_or_insert(cyc);
        table.row([
            name.to_string(),
            format!("{cyc:.0}"),
            pct(meas.truth.tl2d / total),
            pct(meas.truth.tl1i / total),
            pct(meas.truth.tb / total),
            format!("{:.2}x", base / cyc),
        ]);
    }
    println!("{table}");
    println!("The paper's conclusion in action: no single fix is a silver bullet —");
    println!("removing one stall class shifts the bottleneck to the others (§5.1).\n");

    // Part 2: attack T_L2D at its source — the page layout. A fields-only
    // engine (System A) scans 2 of 25 columns; under NSM every record's
    // lines come through the hierarchy, under PAX only the two projected
    // minipages per page. Both runs return the same answer; the simulator's
    // own counters decide the claim.
    println!("Changing the page layout itself (System A, 2 of 25 columns):\n");
    let mut layout_table = TextTable::new([
        "layout",
        "cycles/record",
        "L2 data misses/query",
        "T_L2D share",
        "T_M share",
    ]);
    let mut misses = Vec::new();
    let mut answers = Vec::new();
    for layout in PageLayout::ALL {
        // One warmed run per layout: the snapshot delta carries both the
        // raw counters (exact L2 data miss count) and the stall ledger the
        // breakdown shares come from.
        let mut db = wdtg_core::build_db_with_layout(
            EngineProfile::system(SystemId::A),
            scale,
            MicroQuery::SequentialRangeSelection,
            &cfg,
            layout,
        )
        .expect("build");
        let q = wdtg_workloads::micro::query(scale, MicroQuery::SequentialRangeSelection, 0.1);
        let warm = db.run(&q).expect("warm-up");
        let before = db.cpu().snapshot();
        db.run(&q).expect("measured run");
        let delta = db.cpu().snapshot().delta(&before);
        let l2d = delta.counters.total(Event::SimL2DataMiss);
        let truth = wdtg_core::TimeBreakdown::from_snapshot(&delta, Mode::User);
        let total = truth.cycles.max(1e-9);
        layout_table.row([
            layout.label().to_string(),
            format!("{:.0}", total / scale.r_records as f64),
            l2d.to_string(),
            pct(truth.tl2d / total),
            pct(truth.tm() / total),
        ]);
        misses.push(l2d);
        answers.push(warm.rows);
    }
    println!("{layout_table}");

    assert_eq!(answers[0], answers[1], "layouts must agree on the answer");
    assert!(
        misses[1] < misses[0],
        "PAX must take fewer L2 data misses than NSM on a narrow projection \
         (NSM {} vs PAX {})",
        misses[0],
        misses[1]
    );
    println!(
        "checked: PAX cut L2 data misses {:.1}x on the narrow scan (NSM {} -> PAX {}),",
        misses[0] as f64 / misses[1].max(1) as f64,
        misses[0],
        misses[1]
    );
    println!("with identical query answers — the cache-conscious layout the paper's");
    println!("authors built next (PAX, VLDB 2001), demonstrated in this simulator.");
}

//! Using the harness the way the paper's conclusions suggest: evaluate a
//! cache-conscious redesign *before* building it.
//!
//! We take System C (interpreted, no prefetching) and apply the two fixes
//! the paper's findings point to — scan prefetching to attack T_L2D (§5.2.1)
//! and compiled predicate evaluation to shrink the instruction footprint
//! (§5.2.2) — then measure each variant on the same simulated processor.
//!
//! Run with: `cargo run --release --example cache_conscious`

use wdtg_core::methodology::{measure_query_with, Methodology};
use wdtg_core::tables::{pct, TextTable};
use wdtg_memdb::{EngineProfile, EvalMode, SystemId};
use wdtg_sim::CpuConfig;
use wdtg_workloads::{MicroQuery, Scale};

fn main() {
    let scale = Scale::tiny();
    let cfg = CpuConfig::pentium_ii_xeon();
    let m = Methodology::default();

    let baseline = EngineProfile::system(SystemId::C);

    let mut prefetching = EngineProfile::system(SystemId::C);
    prefetching.prefetch_lines_ahead = 24;

    let mut compiled = EngineProfile::system(SystemId::C);
    compiled.eval_mode = EvalMode::Compiled;

    let mut both = EngineProfile::system(SystemId::C);
    both.prefetch_lines_ahead = 24;
    both.eval_mode = EvalMode::Compiled;

    let variants = [
        ("System C (baseline)", baseline),
        ("+ scan prefetch", prefetching),
        ("+ compiled predicates", compiled),
        ("+ both", both),
    ];

    println!("Attacking System C's stalls (10% sequential range selection):\n");
    let mut table = TextTable::new([
        "variant",
        "cycles/record",
        "T_L2D share",
        "T_L1I share",
        "T_B share",
        "speedup",
    ]);
    let mut base_cycles = None;
    for (name, profile) in variants {
        let meas = measure_query_with(
            profile,
            MicroQuery::SequentialRangeSelection,
            0.1,
            scale,
            &cfg,
            &m,
        )
        .expect("measurement runs");
        let total = meas.truth.component_sum().max(1e-9);
        let cyc = meas.cycles_per_record();
        let base = *base_cycles.get_or_insert(cyc);
        table.row([
            name.to_string(),
            format!("{cyc:.0}"),
            pct(meas.truth.tl2d / total),
            pct(meas.truth.tl1i / total),
            pct(meas.truth.tb / total),
            format!("{:.2}x", base / cyc),
        ]);
    }
    println!("{table}");
    println!("The paper's conclusion in action: no single fix is a silver bullet —");
    println!("removing one stall class shifts the bottleneck to the others (§5.1).");
}

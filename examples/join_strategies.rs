//! The join chapter in one sitting: run the paper's two-table equijoin
//! under all three join strategies and let the simulator's own counters
//! arbitrate.
//!
//! The paper finds the sequential join's time going to L2 data misses and
//! L1 instruction misses (§5). The naive transient hash join is the
//! strategy its systems ran; the radix-partitioned hash join is the
//! cache-conscious fix the join literature converged on (partition both
//! inputs into L2-sized buckets, then join partition by partition); the
//! index nested-loop join is the strategy the paper's authors *didn't*
//! measure — and the counters show why nobody picks it for this shape
//! (one cold B+tree descent plus a random record fetch per probe row).
//!
//! The example asserts the partitioned join's contract — identical answer,
//! strictly fewer simulated L2 data misses than the naive join — so
//! running it checks the claim, not just prints it.
//!
//! Run with: `cargo run --release --example join_strategies`

use wdtg_core::figures::JoinComparison;
use wdtg_memdb::{ExecMode, JoinAlgo, PageLayout, SystemId};
use wdtg_sim::{CpuConfig, InterruptCfg};
use wdtg_workloads::JoinSpec;

fn main() {
    // A compact spec that keeps the interesting cache regime: the naive
    // join's hash table (build 20 K rows ≈ 640 KB of directory + entries)
    // does not fit the 512 KB L2.
    let spec = JoinSpec::test_scale();
    let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled());

    let cmp = JoinComparison::run_nsm(SystemId::C, spec, &cfg).expect("comparison runs");
    println!("{}", cmp.render());

    let hash = cmp
        .get(JoinAlgo::Hash, ExecMode::Row, PageLayout::Nsm)
        .expect("measured");
    let part = cmp
        .get(JoinAlgo::PartitionedHash, ExecMode::Row, PageLayout::Nsm)
        .expect("measured");
    assert_eq!(hash.rows, part.rows, "strategies must agree on the answer");
    assert!(
        part.l2_data_misses < hash.l2_data_misses,
        "partitioned join must cut L2 data misses (hash {} vs partitioned {})",
        hash.l2_data_misses,
        part.l2_data_misses
    );
    println!(
        "checked: partitioning cut L2 data misses {:.2}x (hash {} -> partitioned {})",
        hash.l2_data_misses as f64 / part.l2_data_misses.max(1) as f64,
        hash.l2_data_misses,
        part.l2_data_misses
    );
    println!("with identical join answers — the compute-for-misses trade, measured.");
}

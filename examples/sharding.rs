//! The scaling chapter in one sitting: hash-partition the paper's relation
//! across 1, 2 and 4 simulated cores, run the same DSS sequential range
//! selection, and let the merged counters arbitrate.
//!
//! The paper measures a single processor and closes by asking where time
//! goes as engines scale. Here each shard owns its own buffer pool and its
//! own deterministic `wdtg_sim::Cpu`; shards execute sequentially (no OS
//! threads, so `tests/determinism.rs` stays honest) and the merged wall
//! clock of a query is the *max* of per-core cycle deltas while the
//! breakdown *sums* them. The partial-aggregate merge is integer-exact, so
//! every shard count returns the 1-core answer bit-identically.
//!
//! The example asserts that contract — identical answers, near-linear
//! wall-clock speedup, sum ≥ max — so running it checks the claim, not
//! just prints it.
//!
//! Run with: `cargo run --release --example sharding`

use wdtg_core::methodology::build_sharded_db_with_layout;
use wdtg_memdb::{EngineProfile, PageLayout, SystemId};
use wdtg_sim::{CpuConfig, InterruptCfg};
use wdtg_workloads::{micro, MicroQuery, Scale};

fn main() {
    let scale = Scale {
        r_records: 48_000,
        s_records: 1_600,
        record_bytes: 100,
    };
    let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled());
    let q = micro::query(scale, MicroQuery::SequentialRangeSelection, 0.1);

    println!(
        "Sharded DSS sequential range selection: {} rows x {} B, System C (row mode)\n",
        scale.r_records, scale.record_bytes
    );
    println!("shards |  wall Mcycles | speedup | total work Mcycles | rows");

    let mut baseline: Option<(f64, u64, f64)> = None; // (wall, rows, value)
    for shards in [1usize, 2, 4] {
        let mut db = build_sharded_db_with_layout(
            EngineProfile::system(SystemId::C),
            scale,
            MicroQuery::SequentialRangeSelection,
            &cfg,
            PageLayout::Nsm,
            shards,
        )
        .expect("sharded build");
        db.run(&q).expect("warm-up run");
        let before = db.snapshots();
        let res = db.run(&q).expect("measured run");
        let merged = db.merged_delta(&before);

        let (wall1, rows1, value1) =
            *baseline.get_or_insert((merged.wall_cycles, res.rows, res.value));
        assert_eq!(res.rows, rows1, "sharding must not change the row count");
        assert_eq!(res.value, value1, "merged AVG must be bit-identical");
        assert!(
            merged.total.cycles >= merged.wall_cycles,
            "summed work can never undercut the slowest core"
        );
        println!(
            "{shards:>6} | {:>13.2} | {:>6.2}x | {:>18.2} | {}",
            merged.wall_cycles / 1e6,
            wall1 / merged.wall_cycles,
            merged.total.cycles / 1e6,
            res.rows,
        );
        if shards == 4 {
            let speedup = wall1 / merged.wall_cycles;
            assert!(
                speedup >= 3.0,
                "4 shards must cut the scan's wall clock >= 3x, got {speedup:.2}x"
            );
            println!(
                "\nchecked: answers bit-identical at every shard count; 4 shards \
                 cut the wall clock {speedup:.2}x\n(the scan parallelizes across \
                 partitions; each core's query setup is the serial tail)."
            );
        }
    }
}

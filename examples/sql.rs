//! The SQL front door: one [`Session`], plain SQL text in, answers and
//! simulator-costed `EXPLAIN` plans out.
//!
//! Every statement below goes through the full pipeline — lex → parse →
//! bind → physical planning (each knob candidate costed by running a
//! sampled pilot on the cycle simulator) → execution. `EXPLAIN` prints the
//! candidate table, so you can watch the planner rediscover the paper's
//! physical-design rules from stall terms alone.
//!
//! Run with: `cargo run --release --example sql`

use wdtg::memdb::prelude::*;
use wdtg::memdb::{EngineProfile, Schema, SystemId};
use wdtg::sim::{CpuConfig, InterruptCfg};

/// R: 4096 20-byte records, `a2` uniform over 0..1000, `a3` the aggregated
/// value, `a4` a 8-way group key.
fn build_db(cfg: &CpuConfig) -> Database {
    let mut db = Database::new(EngineProfile::system(SystemId::A), cfg.clone());
    db.ctx.instrument = false;
    db.create_table("R", Schema::paper_relation(20)).unwrap();
    db.load_rows(
        "R",
        (0..4096usize).map(|i| {
            let x = ((i as u32).wrapping_mul(0x9e37_79b9) >> 8) as i32 & 0x7fff_ffff;
            vec![i as i32, x % 1000, x % 10007, x % 8, 0]
        }),
    )
    .unwrap();
    db.create_table("S", Schema::paper_relation(20)).unwrap();
    db.load_rows("S", (0..2048).map(|i| vec![i, i * 2, i % 5, 0, 0]))
        .unwrap();
    db.create_index("R", "a1").unwrap();
    db.ctx.instrument = true;
    db
}

fn main() {
    let quiet = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled());

    // ---- scalar queries through one session -----------------------------
    let mut sess = Session::open(build_db(&quiet));
    for sql in [
        "SELECT AVG(a3) FROM R WHERE a2 > 100 AND a2 < 400",
        "SELECT COUNT(*) FROM R WHERE a2 >= 500 AND a4 <> 3",
        "SELECT AVG(R.a3) FROM R JOIN S ON R.a2 = S.a1",
        "SELECT a3 FROM R WHERE a1 = 42",
    ] {
        let r = sess.sql(sql).unwrap();
        println!("{sql}\n  -> {:.3} over {} rows", r.value, r.rows);
    }
    for (k, v) in sess
        .sql_grouped("SELECT a4, AVG(a3) FROM R GROUP BY a4")
        .unwrap()
    {
        println!("  group a4={k}: avg {v:.1}");
    }

    // ---- EXPLAIN: the planner shows its work ----------------------------
    // Each candidate row is a knob combination costed on a sampled pilot
    // run of the cycle simulator; the star marks the winner.
    println!(
        "\n{}",
        sess.explain("SELECT AVG(a3) FROM R WHERE a2 > -1 AND a2 < 500")
            .unwrap()
    );

    // ---- the §5.3 predication flip, found from simulated T_B ------------
    // On a deep-pipeline variant (3x the P6's 17-cycle misprediction
    // penalty, the §6 direction) the 50%-selectivity scan flips to the
    // branch-free predicated evaluation — the planner prices the flip from
    // the pilot's branch-stall term, with no selectivity rule anywhere.
    let deep = quiet.clone().with_mispredict_penalty(51);
    let mut sess = Session::open(build_db(&deep));
    println!(
        "{}",
        sess.explain("SELECT AVG(a3) FROM R WHERE a2 > -1 AND a2 < 500")
            .unwrap()
    );

    // ---- the join L2 crossover, found from simulated T_M ----------------
    // With L2 shrunk to 32 KB the 2048-row build side no longer fits, and
    // the planner flips to the cache-partitioned join on memory-stall
    // grounds.
    let small_l2 = quiet.with_l2_size(32 * 1024);
    let mut sess = Session::open(build_db(&small_l2));
    println!(
        "{}",
        sess.explain("SELECT AVG(R.a3) FROM R JOIN S ON R.a2 = S.a1")
            .unwrap()
    );

    // ---- mutations share the same front door ----------------------------
    let n = sess
        .sql("INSERT INTO R VALUES (5000, 999, 123, 0, 0)")
        .unwrap();
    assert_eq!(n.rows, 1);
    sess.sql("UPDATE R SET a3 = a3 + 7 WHERE a1 = 5000")
        .unwrap();
    let read = sess.sql("SELECT a3 FROM R WHERE a1 = 5000").unwrap();
    println!("inserted, updated, read back: a3 = {}", read.value);
    assert_eq!(read.value, 130.0);
}

//! Quickstart: where does time go when one engine runs one query?
//!
//! Builds System C (an interpreted, full-materialization engine) on a
//! simulated Pentium II Xeon, loads a small R relation, runs the paper's
//! sequential range selection and prints the execution-time breakdown.
//!
//! Run with: `cargo run --release --example quickstart`

use wdtg_core::methodology::{measure_query, Methodology};
use wdtg_core::tables::pct;
use wdtg_memdb::SystemId;
use wdtg_sim::CpuConfig;
use wdtg_workloads::{MicroQuery, Scale};

fn main() {
    // select avg(a3) from R where a2 < Hi and a2 > Lo  -- 10% selectivity
    let measurement = measure_query(
        SystemId::C,
        MicroQuery::SequentialRangeSelection,
        0.10,
        Scale::tiny(),
        &CpuConfig::pentium_ii_xeon(),
        &Methodology::default(),
    )
    .expect("measurement runs");

    let b = &measurement.truth;
    let f = b.four_way();
    println!(
        "System C, 10% sequential range selection ({} rows selected)\n",
        measurement.rows
    );
    println!("cycles per query:        {:>12.0}", b.cycles);
    println!("instructions retired:    {:>12}", b.inst_retired);
    println!("clocks per instruction:  {:>12.2}", b.cpi());
    println!();
    println!("where does time go?");
    println!(
        "  computation      {:>7}   {}",
        pct(f.computation),
        bar(f.computation)
    );
    println!(
        "  memory stalls    {:>7}   {}",
        pct(f.memory),
        bar(f.memory)
    );
    println!(
        "    L1D {:>6}  L1I {:>6}  L2D {:>6}  L2I {:>6}",
        pct(b.tl1d / b.cycles),
        pct(b.tl1i / b.cycles),
        pct(b.tl2d / b.cycles),
        pct(b.tl2i / b.cycles)
    );
    println!(
        "  branch mispred.  {:>7}   {}",
        pct(f.branch),
        bar(f.branch)
    );
    println!(
        "  resource stalls  {:>7}   {}",
        pct(f.resource),
        bar(f.resource)
    );
    println!();
    println!(
        "hardware rates: L1D miss {:.1}%, L2 data miss {:.1}%, mispredict {:.1}%, BTB miss {:.1}%",
        measurement.rates.l1d_miss * 100.0,
        measurement.rates.l2d_miss * 100.0,
        measurement.rates.br_mispredict * 100.0,
        measurement.rates.btb_miss * 100.0
    );
}

fn bar(f: f64) -> String {
    wdtg_core::tables::bar(f, 40)
}

//! Quickstart: ask in SQL, see where the time goes.
//!
//! Builds System C (an interpreted, full-materialization engine) on a
//! simulated Pentium II Xeon, loads the §3.3 microbenchmark relation, and
//! opens a [`wdtg::memdb::Session`] — the unified front door. `EXPLAIN`
//! shows the physical plan the session picked (every knob candidate costed
//! on a sampled pilot run of the cycle simulator), then the measured run's
//! execution-time breakdown answers the paper's question.
//!
//! Run with: `cargo run --release --example quickstart`

use wdtg::core::methodology::Rates;
use wdtg::core::tables::pct;
use wdtg::core::TimeBreakdown;
use wdtg::memdb::prelude::*;
use wdtg::memdb::{EngineProfile, SystemId};
use wdtg::sim::{CpuConfig, Mode};
use wdtg::workloads::{micro, MicroQuery, Scale};

fn main() {
    let scale = Scale::tiny();
    let mut db = Database::new(
        EngineProfile::system(SystemId::C),
        CpuConfig::pentium_ii_xeon(),
    );
    db.ctx.instrument = false;
    micro::prepare(&mut db, scale, MicroQuery::SequentialRangeSelection).unwrap();
    db.ctx.instrument = true;

    // select avg(a3) from R where a2 > Lo and a2 < Hi  -- 10% selectivity
    let sql = micro::query_sql(scale, MicroQuery::SequentialRangeSelection, 0.10);
    let mut sess = Session::open(db);

    // The planner shows its work: each candidate is a knob combination
    // costed by simulating a sampled pilot; the star marks the winner.
    println!("{}", sess.explain(&sql).unwrap());

    // Warm run first (the paper measures warm caches, §4.3), then measure.
    sess.sql(&sql).unwrap();
    let before = sess.db().unwrap().cpu().snapshot();
    let r = sess.sql(&sql).unwrap();
    let delta = sess.db().unwrap().cpu().snapshot().delta(&before);

    let b = TimeBreakdown::from_snapshot(&delta, Mode::User);
    let f = b.four_way();
    println!(
        "System C, 10% sequential range selection ({} rows selected)\n",
        r.rows
    );
    println!("cycles per query:        {:>12.0}", b.cycles);
    println!("instructions retired:    {:>12}", b.inst_retired);
    println!("clocks per instruction:  {:>12.2}", b.cpi());
    println!();
    println!("where does time go?");
    println!(
        "  computation      {:>7}   {}",
        pct(f.computation),
        bar(f.computation)
    );
    println!(
        "  memory stalls    {:>7}   {}",
        pct(f.memory),
        bar(f.memory)
    );
    println!(
        "    L1D {:>6}  L1I {:>6}  L2D {:>6}  L2I {:>6}",
        pct(b.tl1d / b.cycles),
        pct(b.tl1i / b.cycles),
        pct(b.tl2d / b.cycles),
        pct(b.tl2i / b.cycles)
    );
    println!(
        "  branch mispred.  {:>7}   {}",
        pct(f.branch),
        bar(f.branch)
    );
    println!(
        "  resource stalls  {:>7}   {}",
        pct(f.resource),
        bar(f.resource)
    );
    println!();
    let rates = Rates::from_delta(&delta);
    println!(
        "hardware rates: L1D miss {:.1}%, L2 data miss {:.1}%, mispredict {:.1}%, BTB miss {:.1}%",
        rates.l1d_miss * 100.0,
        rates.l2d_miss * 100.0,
        rates.br_mispredict * 100.0,
        rates.btb_miss * 100.0
    );
}

fn bar(f: f64) -> String {
    wdtg::core::tables::bar(f, 40)
}

//! DSS vs OLTP (§5.5): the same engine shows a completely different
//! hardware profile under decision-support and transaction workloads.
//!
//! Run with: `cargo run --release --example dss_vs_oltp`

use wdtg_core::dss::measure_tpcd;
use wdtg_core::oltp::measure_tpcc;
use wdtg_core::tables::{pct, TextTable};
use wdtg_memdb::SystemId;
use wdtg_sim::CpuConfig;
use wdtg_workloads::{TpccScale, TpcdScale};

fn main() {
    let cfg = CpuConfig::pentium_ii_xeon();
    let sys = SystemId::B;

    println!(
        "{} under DSS (17 TPC-D-like queries) and OLTP (TPC-C-like mix):\n",
        sys.name()
    );

    let dss = measure_tpcd(sys, TpcdScale::tiny(), &cfg).expect("dss runs");
    let oltp = measure_tpcc(sys, TpccScale::tiny(), &cfg, 200).expect("oltp runs");

    let mut t = TextTable::new(["metric", "DSS (TPC-D-like)", "OLTP (TPC-C-like)"]);
    let fd = dss.truth.four_way();
    let fo = oltp.truth.four_way();
    t.row([
        "CPI".to_string(),
        format!("{:.2}", dss.truth.cpi()),
        format!("{:.2}", oltp.truth.cpi()),
    ]);
    t.row([
        "computation".to_string(),
        pct(fd.computation),
        pct(fo.computation),
    ]);
    t.row(["memory stalls".to_string(), pct(fd.memory), pct(fo.memory)]);
    t.row([
        "  L2 share of memory".to_string(),
        pct((dss.truth.tl2d + dss.truth.tl2i) / dss.truth.tm().max(1e-9)),
        pct(oltp.l2_share_of_memory()),
    ]);
    t.row([
        "branch mispredictions".to_string(),
        pct(fd.branch),
        pct(fo.branch),
    ]);
    t.row([
        "resource stalls".to_string(),
        pct(fd.resource),
        pct(fo.resource),
    ]);
    println!("{t}");
    println!("Paper §5.5: OLTP runs at 2.5-4.5 CPI with 60-80% memory stalls dominated");
    println!("by the L2, while DSS looks like the simple scan queries.");
    println!("\nPer-query DSS breakdown (first 5 of 17):");
    for (label, b) in dss.per_query.iter().take(5) {
        let f = b.four_way();
        println!(
            "  {label:>3}: CPI {:.2}  comp {} mem {} br {} res {}",
            b.cpi(),
            pct(f.computation),
            pct(f.memory),
            pct(f.branch),
            pct(f.resource)
        );
    }
}

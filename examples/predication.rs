//! The branch chapter in one sitting: run the paper's sequential range
//! selection at the worst-case 50% selectivity under both selection modes
//! and let the simulator's own counters arbitrate.
//!
//! §5.3/Fig 5.4 finds branch-misprediction stalls (T_B) peaking where the
//! qualify branch's direction is a coin flip — near 50% selectivity — at
//! 10–20% of query time. Every system the paper measures *branches* on the
//! predicate result; branch-free (predicated, cmov-style) evaluation is
//! the fix the code-generation literature converged on: compute the
//! qualify bit arithmetically, pay a few unconditional instructions per
//! row, and leave the branch predictor nothing to mispredict. In batch
//! mode the qualifying rows travel as a selection vector on the batch, so
//! qualification costs no data-dependent copy either.
//!
//! The example asserts predication's contract — identical answer, zero
//! data-dependent qualify mispredictions, strictly less T_B — so running
//! it checks the claim, not just prints it.
//!
//! Run with: `cargo run --release --example predication`

use wdtg_core::figures::SelectivityComparison;
use wdtg_memdb::{ExecMode, PageLayout, SelectionMode, SystemId};
use wdtg_sim::{CpuConfig, InterruptCfg};
use wdtg_workloads::{Scale, SweepSpec};

fn main() {
    // A compact sweep around the misprediction peak on the lean compiled
    // engine (System A), vectorized executor — the configuration where the
    // qualify branch is the dominant branch-stall term.
    let scale = Scale {
        r_records: 24_000,
        s_records: 800,
        record_bytes: 20,
    };
    let sweep = SweepSpec {
        selectivities: vec![0.01, 0.5, 0.99],
    };
    let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled());

    let mut cells = Vec::new();
    for selection in SelectionMode::ALL {
        cells.extend(
            SelectivityComparison::run_config(
                SystemId::A,
                scale,
                &sweep,
                &cfg,
                selection,
                ExecMode::Batch,
                PageLayout::Nsm,
            )
            .expect("sweep runs"),
        );
    }
    let cmp = SelectivityComparison {
        system: SystemId::A,
        scale,
        cells,
    };
    println!("{}", cmp.render());

    let series = |m| cmp.series(m, ExecMode::Batch, PageLayout::Nsm);
    let at_half = |m| -> &wdtg_core::BranchCell {
        series(m)
            .into_iter()
            .find(|c| c.selectivity == 0.5)
            .expect("measured")
    };
    let b = at_half(SelectionMode::Branching);
    let p = at_half(SelectionMode::Predicated);
    assert_eq!((b.rows, b.value), (p.rows, p.value), "answers must agree");
    assert_eq!(
        p.qualify_branch_misses, 0,
        "predicated evaluation must execute zero data-dependent qualify branches"
    );
    assert!(
        b.qualify_branch_misses as f64 > 0.2 * scale.r_records as f64,
        "a 50% qualify branch should mispredict often"
    );
    assert!(
        p.truth.tb < b.truth.tb,
        "predication must cut branch-misprediction stalls"
    );
    println!(
        "checked: at 50% selectivity predication cut T_B {:.1}x ({:.0} -> {:.0} cycles), \
         qualify mispredictions {} -> 0,\npaying {} unconditional select lanes — \
         the compute-for-mispredictions trade, measured.",
        b.truth.tb / p.truth.tb.max(1e-9),
        b.truth.tb,
        p.truth.tb,
        b.qualify_branch_misses,
        p.select_ops,
    );
}

//! # wdtg — Where Does Time Go?
//!
//! A full reproduction of *"DBMSs On A Modern Processor: Where Does Time
//! Go?"* (Ailamaki, DeWitt, Hill, Wood — VLDB 1999) as a Rust workspace:
//! an instrumented memory-resident relational DBMS with four engine
//! profiles (the paper's anonymous Systems A–D), a Pentium II Xeon-class
//! processor/memory timing model, an `emon`-style two-counter measurement
//! tool, the paper's workloads, and a harness that regenerates every table
//! and figure of the evaluation.
//!
//! This facade crate re-exports the public API of all member crates; see
//! the README for a tour and `examples/` for runnable entry points.

#![warn(missing_docs)]

pub use wdtg_core as core;
pub use wdtg_emon as emon;
pub use wdtg_memdb as memdb;
pub use wdtg_sim as sim;
pub use wdtg_workloads as workloads;

pub use wdtg_core::{
    FigureCtx, Methodology, MicrobenchGrid, PlannerComparison, ScalingComparison, TimeBreakdown,
};
pub use wdtg_memdb::{Database, EngineProfile, Query, Session, ShardedDatabase, SystemId};
pub use wdtg_sim::{CpuConfig, Event, Mode};
pub use wdtg_workloads::{MicroQuery, Scale};

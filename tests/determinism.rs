//! End-to-end determinism: identical builds produce cycle-exact results.
//! Determinism is what makes the two-counter multiplexing methodology exact
//! in the simulator (and merely "stddev < 5%" on the real machine, §4.3).

use wdtg_core::methodology::{build_db, measure_query, Methodology};
use wdtg_memdb::SystemId;
use wdtg_sim::{CpuConfig, Event, Mode};
use wdtg_workloads::{micro, MicroQuery, Scale};

#[test]
fn identical_measurements_are_cycle_exact() {
    let run = || {
        measure_query(
            SystemId::B,
            MicroQuery::IndexedRangeSelection,
            0.1,
            Scale::tiny(),
            &CpuConfig::pentium_ii_xeon(),
            &Methodology::default(),
        )
        .expect("measurement runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.truth.cycles, b.truth.cycles);
    assert_eq!(a.truth.inst_retired, b.truth.inst_retired);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.truth.tl2d, b.truth.tl2d);
    assert_eq!(a.truth.tb, b.truth.tb);
}

#[test]
fn all_three_queries_run_on_all_systems_deterministically() {
    let scale = Scale::tiny();
    let cfg = CpuConfig::pentium_ii_xeon();
    for query in MicroQuery::ALL {
        for sys in SystemId::ALL {
            if query == MicroQuery::IndexedRangeSelection && sys == SystemId::A {
                // A still answers the query (by scanning); included.
            }
            let mut db = build_db(sys, scale, query, &cfg).expect("build");
            let q = micro::query(scale, query, 0.1);
            let r1 = db.run(&q).expect("first run");
            let c1 = db.cpu().counters().get(Mode::User, Event::InstRetired);
            let r2 = db.run(&q).expect("second run");
            assert_eq!(r1.rows, r2.rows, "{sys:?} {query:?} answers must be stable");
            assert!((r1.value - r2.value).abs() < 1e-9);
            let c2 = db.cpu().counters().get(Mode::User, Event::InstRetired);
            assert!(c2 > c1, "second run retires more instructions");
        }
    }
}

#[test]
fn warm_runs_are_faster_than_cold_runs() {
    // The §4.3 methodology warms caches before measuring; the first (cold)
    // execution must cost more cycles than a warmed one.
    let scale = Scale::tiny();
    let cfg = CpuConfig::pentium_ii_xeon();
    let mut db = build_db(
        SystemId::D,
        scale,
        MicroQuery::SequentialRangeSelection,
        &cfg,
    )
    .expect("build");
    let q = micro::query(scale, MicroQuery::SequentialRangeSelection, 0.1);

    let s0 = db.cpu().snapshot();
    db.run(&q).expect("cold run");
    let s1 = db.cpu().snapshot();
    db.run(&q).expect("warm run");
    let s2 = db.cpu().snapshot();
    let cold = s1.cycles - s0.cycles;
    let warm = s2.cycles - s1.cycles;
    assert!(warm < cold, "warm {warm} vs cold {cold}");
}

//! End-to-end determinism: identical builds produce cycle-exact results.
//! Determinism is what makes the two-counter multiplexing methodology exact
//! in the simulator (and merely "stddev < 5%" on the real machine, §4.3).

use wdtg_core::methodology::{build_db, measure_query, Methodology};
use wdtg_memdb::SystemId;
use wdtg_sim::{CpuConfig, Event, Mode};
use wdtg_workloads::{micro, MicroQuery, Scale};

#[test]
fn identical_measurements_are_cycle_exact() {
    let run = || {
        measure_query(
            SystemId::B,
            MicroQuery::IndexedRangeSelection,
            0.1,
            Scale::tiny(),
            &CpuConfig::pentium_ii_xeon(),
            &Methodology::default(),
        )
        .expect("measurement runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.truth.cycles, b.truth.cycles);
    assert_eq!(a.truth.inst_retired, b.truth.inst_retired);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.truth.tl2d, b.truth.tl2d);
    assert_eq!(a.truth.tb, b.truth.tb);
}

#[test]
fn all_three_queries_run_on_all_systems_deterministically() {
    let scale = Scale::tiny();
    let cfg = CpuConfig::pentium_ii_xeon();
    for query in MicroQuery::ALL {
        for sys in SystemId::ALL {
            if query == MicroQuery::IndexedRangeSelection && sys == SystemId::A {
                // A still answers the query (by scanning); included.
            }
            let mut db = build_db(sys, scale, query, &cfg).expect("build");
            let q = micro::query(scale, query, 0.1);
            let r1 = db.run(&q).expect("first run");
            let c1 = db.cpu().counters().get(Mode::User, Event::InstRetired);
            let r2 = db.run(&q).expect("second run");
            assert_eq!(r1.rows, r2.rows, "{sys:?} {query:?} answers must be stable");
            assert!((r1.value - r2.value).abs() < 1e-9);
            let c2 = db.cpu().counters().get(Mode::User, Event::InstRetired);
            assert!(c2 > c1, "second run retires more instructions");
        }
    }
}

#[test]
fn sharded_measurements_are_cycle_exact() {
    // The sharded executor must clear the same determinism bar as the
    // single core: identical builds, identical merged measurements. Shards
    // run sequentially (no OS threads), so the only way this fails is a
    // nondeterministic router or merge.
    for shards in [2u32, 4] {
        let run = || {
            measure_query(
                SystemId::C,
                MicroQuery::SequentialRangeSelection,
                0.1,
                Scale::tiny(),
                &CpuConfig::pentium_ii_xeon(),
                &Methodology::default().with_shards(shards as usize),
            )
            .expect("sharded measurement runs")
        };
        let a = run();
        let b = run();
        assert_eq!(a.truth.cycles, b.truth.cycles, "{shards} shards");
        assert_eq!(a.truth.inst_retired, b.truth.inst_retired);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.truth.tl2d, b.truth.tl2d);
        assert_eq!(a.truth.tb, b.truth.tb);
    }
}

#[test]
fn sharded_answers_match_the_single_core_measurement() {
    let m = |shards: usize| {
        measure_query(
            SystemId::C,
            MicroQuery::SequentialRangeSelection,
            0.1,
            Scale::tiny(),
            &CpuConfig::pentium_ii_xeon(),
            &Methodology::default().with_shards(shards),
        )
        .expect("measurement runs")
    };
    let one = m(1);
    let four = m(4);
    assert_eq!(one.rows, four.rows, "sharding must not change the answer");
    // Total work across 4 cores stays close to the single core's (each
    // extra core pays only its own per-query setup).
    assert!(
        four.truth.cycles < one.truth.cycles * 1.25,
        "sharded total work ballooned: 1-shard {:.0} vs 4-shard {:.0}",
        one.truth.cycles,
        four.truth.cycles
    );
}

#[test]
fn warm_runs_are_faster_than_cold_runs() {
    // The §4.3 methodology warms caches before measuring; the first (cold)
    // execution must cost more cycles than a warmed one.
    let scale = Scale::tiny();
    let cfg = CpuConfig::pentium_ii_xeon();
    let mut db = build_db(
        SystemId::D,
        scale,
        MicroQuery::SequentialRangeSelection,
        &cfg,
    )
    .expect("build");
    let q = micro::query(scale, MicroQuery::SequentialRangeSelection, 0.1);

    let s0 = db.cpu().snapshot();
    db.run(&q).expect("cold run");
    let s1 = db.cpu().snapshot();
    db.run(&q).expect("warm run");
    let s2 = db.cpu().snapshot();
    let cold = s1.cycles - s0.cycles;
    let warm = s2.cycles - s1.cycles;
    assert!(warm < cold, "warm {warm} vs cold {cold}");
}

//! The reproduction contract: the paper's §5 findings, asserted as tests.
//!
//! Runs the microbenchmark grid at a reduced scale (the shapes are scale
//! invariant because the Scale type preserves every dataset ratio) and
//! asserts the machine-checked claims of `wdtg_core::validate`.

use wdtg_core::figures::{FigureCtx, MicrobenchGrid, SelectivitySweep};
use wdtg_core::methodology::Methodology;
use wdtg_core::validate::{validate_grid, validate_selectivity};
use wdtg_sim::CpuConfig;
use wdtg_workloads::Scale;

fn test_ctx() -> FigureCtx {
    FigureCtx {
        // Between tiny and dev: large enough for the footprint/locality
        // effects that drive the shapes, small enough for CI.
        scale: Scale {
            r_records: 60_000,
            s_records: 2_000,
            record_bytes: 100,
        },
        cfg: CpuConfig::pentium_ii_xeon(),
        methodology: Methodology::default(),
    }
}

#[test]
fn section_5_claims_hold_on_the_microbenchmark_grid() {
    let ctx = test_ctx();
    let grid = MicrobenchGrid::run(&ctx).expect("grid runs");
    let claims = validate_grid(&grid);
    let failed: Vec<String> = claims
        .iter()
        .filter(|c| !c.pass)
        .map(|c| format!("{}: {} [{}]", c.id, c.description, c.detail))
        .collect();
    assert!(
        failed.is_empty(),
        "paper claims failed:\n{}\n\nfull grid:\n{}",
        failed.join("\n"),
        grid.render_fig5_1()
    );
}

#[test]
fn selectivity_couples_branch_and_instruction_stalls() {
    // Fig 5.4 (right): T_B and T_L1I both grow with selectivity on System D.
    let ctx = test_ctx();
    let sweep = SelectivitySweep::run(&ctx).expect("sweep runs");
    for c in validate_selectivity(&sweep) {
        assert!(c.pass, "{}: {} [{}]", c.id, c.description, c.detail);
    }
    // The misprediction *rate* itself must not vary wildly with selectivity
    // (§5.3: "the branch misprediction rate does not vary significantly with
    // record size or selectivity").
    let rates: Vec<f64> = sweep.points.iter().map(|p| p.3).collect();
    let (min, max) = rates.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), r| {
        (lo.min(*r), hi.max(*r))
    });
    assert!(
        max - min < 0.05,
        "misprediction rate should be stable across selectivities: {rates:?}"
    );
}

//! The reproduction contract: the paper's §5 findings, asserted as tests.
//!
//! Runs the microbenchmark grid at a reduced scale (the shapes are scale
//! invariant because the Scale type preserves every dataset ratio) and
//! asserts the machine-checked claims of `wdtg_core::validate`.

use wdtg_core::figures::{
    systems_for, FigureCtx, JoinComparison, MicrobenchGrid, SelectivityComparison, SelectivitySweep,
};
use wdtg_core::methodology::{build_db_with_layout, Methodology};
use wdtg_core::validate::{validate_grid, validate_selectivity};
use wdtg_memdb::{EngineProfile, ExecMode, JoinAlgo, PageLayout, SelectionMode, SystemId};
use wdtg_sim::{CpuConfig, Event, InterruptCfg};
use wdtg_workloads::{micro, JoinSpec, MicroQuery, Scale, SweepSpec};

fn test_ctx() -> FigureCtx {
    FigureCtx {
        // Between tiny and dev: large enough for the footprint/locality
        // effects that drive the shapes, small enough for CI.
        scale: Scale {
            r_records: 60_000,
            s_records: 2_000,
            record_bytes: 100,
        },
        cfg: CpuConfig::pentium_ii_xeon(),
        methodology: Methodology::default(),
    }
}

#[test]
fn section_5_claims_hold_on_the_microbenchmark_grid() {
    let ctx = test_ctx();
    let grid = MicrobenchGrid::run(&ctx).expect("grid runs");
    let claims = validate_grid(&grid);
    let failed: Vec<String> = claims
        .iter()
        .filter(|c| !c.pass)
        .map(|c| format!("{}: {} [{}]", c.id, c.description, c.detail))
        .collect();
    assert!(
        failed.is_empty(),
        "paper claims failed:\n{}\n\nfull grid:\n{}",
        failed.join("\n"),
        grid.render_fig5_1()
    );
}

#[test]
fn selectivity_couples_branch_and_instruction_stalls() {
    // Fig 5.4 (right): T_B and T_L1I both grow with selectivity on System D.
    let ctx = test_ctx();
    let sweep = SelectivitySweep::run(&ctx).expect("sweep runs");
    for c in validate_selectivity(&sweep) {
        assert!(c.pass, "{}: {} [{}]", c.id, c.description, c.detail);
    }
    // The misprediction *rate* itself must not vary wildly with selectivity
    // (§5.3: "the branch misprediction rate does not vary significantly with
    // record size or selectivity").
    let rates: Vec<f64> = sweep.points.iter().map(|p| p.3).collect();
    let (min, max) = rates.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), r| {
        (lo.min(*r), hi.max(*r))
    });
    assert!(
        max - min < 0.05,
        "misprediction rate should be stable across selectivities: {rates:?}"
    );
}

#[test]
fn pax_layout_preserves_answers_and_cuts_l2_data_misses() {
    // The PAX claim, asserted over the same query suite the row/batch
    // parity tests cover: every (query, system, exec-mode) cell returns
    // identical results under NSM and PAX pages, and the narrow-projection
    // sequential scan — the layout's target workload — takes strictly fewer
    // simulated L2 data misses under PAX.
    let scale = Scale {
        r_records: 30_000,
        s_records: 1_000,
        record_bytes: 100,
    };
    let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled());

    for query in MicroQuery::ALL {
        for &sys in systems_for(query) {
            for mode in [ExecMode::Row, ExecMode::Batch] {
                let mut results = Vec::new();
                for layout in PageLayout::ALL {
                    let mut db = build_db_with_layout(
                        EngineProfile::system(sys),
                        scale,
                        query,
                        &cfg,
                        layout,
                    )
                    .expect("build");
                    db.set_exec_mode(mode);
                    let q = micro::query(scale, query, 0.1);
                    results.push(db.run(&q).expect("query runs"));
                }
                let (nsm, pax) = (&results[0], &results[1]);
                assert_eq!(
                    nsm.rows, pax.rows,
                    "{query:?} {sys:?} {mode:?}: row counts differ across layouts"
                );
                assert!(
                    (nsm.value - pax.value).abs() < 1e-9,
                    "{query:?} {sys:?} {mode:?}: values differ across layouts"
                );
            }
        }
    }

    // Strict miss ordering on the narrow projection (2 of 25 columns) for
    // the fields-only engine, System A.
    let mut misses = Vec::new();
    for layout in PageLayout::ALL {
        let mut db = build_db_with_layout(
            EngineProfile::system(SystemId::A),
            scale,
            MicroQuery::SequentialRangeSelection,
            &cfg,
            layout,
        )
        .expect("build");
        let q = micro::query(scale, MicroQuery::SequentialRangeSelection, 0.1);
        db.run(&q).expect("warm-up");
        let before = db.cpu().snapshot();
        db.run(&q).expect("measured run");
        let delta = db.cpu().snapshot().delta(&before);
        misses.push(delta.counters.total(Event::SimL2DataMiss));
    }
    assert!(
        misses[1] < misses[0],
        "PAX must take strictly fewer L2 data misses on the narrow scan: \
         NSM {} vs PAX {}",
        misses[0],
        misses[1]
    );
}

#[test]
fn branching_tb_peaks_at_half_selectivity_and_predication_flattens_it() {
    // The Fig 5.4 claim, isolated on the vectorized executor where the
    // structural loop branches predict almost perfectly and the
    // individually-simulated qualify branch *is* the T_B term: Branching
    // T_B is unimodal in selectivity with its peak within ±10 points of
    // 50% (misprediction probability is maximal where the direction stream
    // is a coin flip), while Predicated T_B stays flat — under 1% of T_Q —
    // across the whole sweep, at identical query answers.
    let scale = Scale {
        r_records: 24_000,
        s_records: 800,
        record_bytes: 20,
    };
    let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled());
    let sweep = SweepSpec::branch_sweep_coarse();
    let mut cells = Vec::new();
    for selection in SelectionMode::ALL {
        cells.extend(
            SelectivityComparison::run_config(
                SystemId::A,
                scale,
                &sweep,
                &cfg,
                selection,
                ExecMode::Batch,
                PageLayout::Nsm,
            )
            .expect("sweep runs"),
        );
    }
    let cmp = SelectivityComparison {
        system: SystemId::A,
        scale,
        cells,
    };
    let branching = cmp.series(SelectionMode::Branching, ExecMode::Batch, PageLayout::Nsm);
    let predicated = cmp.series(SelectionMode::Predicated, ExecMode::Batch, PageLayout::Nsm);

    // Identical answers point by point.
    for (b, p) in branching.iter().zip(&predicated) {
        assert_eq!((b.rows, b.value), (p.rows, p.value), "answers must agree");
        assert_eq!(
            p.qualify_branch_misses, 0,
            "predicated qualify mispredicted"
        );
    }

    // Branching T_B: unimodal with the peak within ±10 points of 50%.
    let shares: Vec<(f64, f64)> = branching
        .iter()
        .map(|c| (c.selectivity, c.tb_share()))
        .collect();
    let peak = shares
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .map(|(i, _)| i)
        .expect("sweep non-empty");
    assert!(
        (0.4..=0.6).contains(&shares[peak].0),
        "T_B peak must sit within ±10 points of 50% selectivity: {shares:?}"
    );
    for w in shares[..=peak].windows(2) {
        assert!(
            w[1].1 >= w[0].1 * 0.95,
            "T_B share must rise towards the peak: {shares:?}"
        );
    }
    for w in shares[peak..].windows(2) {
        assert!(
            w[1].1 <= w[0].1 * 1.05,
            "T_B share must fall past the peak: {shares:?}"
        );
    }

    // Predicated T_B: flat and a sliver of T_Q everywhere.
    for c in &predicated {
        assert!(
            c.tb_share() < 0.01,
            "predicated T_B must stay under 1% of T_Q at {:.0}% selectivity \
             (got {:.2}%)",
            c.selectivity * 100.0,
            c.tb_share() * 100.0
        );
    }

    // And the acceptance headline: predication cuts the peak T_B share >=5x.
    let reduction = cmp
        .peak_tb_reduction(ExecMode::Batch, PageLayout::Nsm)
        .expect("both series measured");
    assert!(
        reduction >= 5.0,
        "predication must cut the peak T_B share at least 5x, got {reduction:.2}x"
    );
}

#[test]
fn partitioned_join_strictly_reduces_l2_data_misses() {
    // The join chapter's claim: at the join workload's default shape —
    // probe side 2x the build side, the naive join's transient hash table
    // past the 512 KB L2 (JoinSpec::test_scale keeps that cache regime at
    // CI-sized row counts, like test_ctx does for the grid) — the
    // radix-partitioned join answers identically while taking strictly
    // fewer simulated L2 data misses, buying them with strictly more
    // retired instructions.
    let spec = JoinSpec::test_scale();
    let cfg = CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled());
    let hash = JoinComparison::measure_cell(
        SystemId::C,
        spec,
        &cfg,
        JoinAlgo::Hash,
        ExecMode::Row,
        PageLayout::Nsm,
    )
    .expect("naive hash join runs");
    let part = JoinComparison::measure_cell(
        SystemId::C,
        spec,
        &cfg,
        JoinAlgo::PartitionedHash,
        ExecMode::Row,
        PageLayout::Nsm,
    )
    .expect("partitioned join runs");

    assert_eq!(hash.rows, part.rows, "strategies must agree on the answer");
    assert_eq!(hash.rows, spec.expected_rows());
    assert!(
        part.l2_data_misses < hash.l2_data_misses,
        "PartitionedHashJoin must take strictly fewer L2 data misses: \
         hash {} vs partitioned {}",
        hash.l2_data_misses,
        part.l2_data_misses
    );
    assert!(
        part.truth.inst_retired > hash.truth.inst_retired,
        "partitioning must charge its extra scatter instructions"
    );
    let tm_share = |c: &wdtg_core::JoinCell| c.truth.tm() / c.truth.cycles.max(1e-9);
    assert!(
        tm_share(&part) < tm_share(&hash),
        "the partitioned join must lower the memory-stall share: {:.3} vs {:.3}",
        tm_share(&hash),
        tm_share(&part)
    );
}

#[test]
fn layout_comparison_shows_pax_attacking_t_l2d() {
    // The LayoutComparison harness itself reproduces the PAX result: System
    // A's T_L2D shrinks on the sequential range selection.
    let ctx = test_ctx();
    let cmp = wdtg_core::LayoutComparison::run(&ctx, MicroQuery::SequentialRangeSelection)
        .expect("comparison runs");
    let reduction = cmp
        .l2d_reduction(SystemId::A)
        .expect("System A participates");
    assert!(
        reduction > 1.5,
        "PAX should cut System A's T_L2D substantially (got {reduction:.2}x)"
    );
}

//! The framework identity `T_Q = T_C + T_M + T_B + T_R − T_OVL` (§3.1) and
//! the component hierarchy of Table 3.1, across workloads and systems.

use wdtg_core::methodology::{build_db, Methodology};
use wdtg_core::{measure_query, TimeBreakdown};
use wdtg_memdb::{Database, EngineProfile, SystemId};
use wdtg_sim::{CpuConfig, Mode};
use wdtg_workloads::tpcc::{self, TpccScale};
use wdtg_workloads::{micro, MicroQuery, Scale, TpccDriver};

#[test]
fn ground_truth_components_partition_cycles_for_every_query() {
    let scale = Scale::tiny();
    let cfg = CpuConfig::pentium_ii_xeon();
    for query in MicroQuery::ALL {
        for sys in [SystemId::A, SystemId::C] {
            let mut db = build_db(sys, scale, query, &cfg).expect("build");
            let q = micro::query(scale, query, 0.1);
            let before = db.cpu().snapshot();
            db.run(&q).expect("query runs");
            let delta = db.cpu().snapshot().delta(&before);
            let b = TimeBreakdown::from_snapshot(&delta, Mode::User);
            let residual = (b.component_sum() - b.cycles).abs();
            assert!(
                residual < 1e-6 * b.cycles.max(1.0),
                "{sys:?}/{query:?}: components {} != cycles {}",
                b.component_sum(),
                b.cycles
            );
        }
    }
}

#[test]
fn oltp_transactions_also_satisfy_the_identity() {
    let cfg = CpuConfig::pentium_ii_xeon();
    let scale = TpccScale::tiny();
    let mut db = Database::new(EngineProfile::system(SystemId::D), cfg);
    db.ctx.instrument = false;
    tpcc::load(&mut db, scale, 11).expect("load");
    db.ctx.instrument = true;
    let mut driver = TpccDriver::new(scale, 11);
    let before = db.cpu().snapshot();
    driver.run(&mut db, 50).expect("txns");
    let delta = db.cpu().snapshot().delta(&before);
    for mode in [Mode::User, Mode::Sup] {
        let b = TimeBreakdown::from_snapshot(&delta, mode);
        assert!(
            (b.component_sum() - b.cycles).abs() < 1e-6 * b.cycles.max(1.0),
            "{mode:?} identity violated"
        );
    }
}

#[test]
fn emon_estimate_reconstructs_overlap_as_nonnegative_residual() {
    let m = Methodology {
        with_emon: true,
        ..Methodology::default()
    };
    let meas = measure_query(
        SystemId::B,
        MicroQuery::SequentialRangeSelection,
        0.1,
        Scale::tiny(),
        &CpuConfig::pentium_ii_xeon(),
        &m,
    )
    .expect("measurement runs");
    let est = meas.estimate.expect("estimate");
    // T_OVL = (T_C + T_M + T_B + T_R) − T_Q ≥ 0: the count×penalty parts
    // are upper bounds, so the estimate never undershoots measured cycles
    // by more than rounding.
    assert!(est.component_sum() + 1.0 >= est.cycles);
}

//! The planner's self-tuning contract: the SQL frontend must rediscover the
//! paper's two headline physical-design rules from pilot-simulated stall
//! costs alone — no selectivity thresholds or cache-size rules are coded
//! anywhere in the planner.
//!
//! * Predication (§5.3): near 50% selectivity the qualify branch is
//!   maximally unpredictable, so the branch-free predicated evaluation must
//!   win on simulated `T_B` grounds.
//! * Partitioned hash join: once the build side's hash table outgrows L2,
//!   cache-partitioning must win on simulated `T_M` grounds. The test
//!   shrinks L2 to 32 KB so the crossover happens at debug-friendly sizes.

use wdtg_core::PlannerComparison;
use wdtg_memdb::SystemId;
use wdtg_sim::{CpuConfig, InterruptCfg};

fn quiet() -> CpuConfig {
    CpuConfig::pentium_ii_xeon().with_interrupts(InterruptCfg::disabled())
}

/// Deep-pipeline variant: 3x the P6's 17-cycle misprediction penalty. On
/// the Xeon itself predication is roughly cost-neutral (its ~12 cycles of
/// unconditional select work buy back ~8.5 expected penalty cycles per row
/// at 50% selectivity); a deeper pipeline tips the trade, and the planner
/// must find the tipping point on its own.
fn deep_pipe() -> CpuConfig {
    quiet().with_mispredict_penalty(PlannerComparison::DEEP_PIPE_PENALTY)
}

#[test]
fn planner_picks_predication_at_the_branch_misprediction_peak() {
    let cell =
        PlannerComparison::scan_cell(&deep_pipe(), SystemId::A, 4096, 0.5).expect("scan cell runs");
    assert!(
        cell.chosen.contains("predicated"),
        "at 50% selectivity on a deep pipeline the planner should choose \
         predication from simulated branch-stall costs; chose `{}`\nmeasured: {:?}",
        cell.chosen,
        cell.measured,
    );
    assert!(
        cell.ratio() <= 1.15,
        "planner pick `{}` is {:.3}x the actual best `{}`",
        cell.chosen,
        cell.ratio(),
        cell.best,
    );
}

#[test]
fn planner_keeps_branching_where_the_qualify_branch_is_predictable() {
    // Same deep pipeline, 1% selectivity: the qualify branch almost always
    // falls through, mispredictions are rare, and predication's
    // unconditional select work is pure overhead.
    let cell = PlannerComparison::scan_cell(&deep_pipe(), SystemId::A, 4096, 0.01)
        .expect("scan cell runs");
    assert!(
        cell.chosen.contains("branching"),
        "at 1% selectivity branching should win; chose `{}`\nmeasured: {:?}",
        cell.chosen,
        cell.measured,
    );
}

#[test]
fn planner_picks_plain_hash_join_while_the_build_side_fits_l2() {
    let cfg = quiet().with_l2_size(32 * 1024);
    let cell = PlannerComparison::join_cell(&cfg, SystemId::A, 4096, 128).expect("join cell runs");
    assert!(
        cell.chosen.ends_with("/hash"),
        "with a 128-row build side resident in L2, partitioning buys nothing; \
         chose `{}`\nmeasured: {:?}",
        cell.chosen,
        cell.measured,
    );
}

#[test]
fn planner_picks_partitioned_hash_join_past_the_l2_crossover() {
    let cfg = quiet().with_l2_size(32 * 1024);
    let cell = PlannerComparison::join_cell(&cfg, SystemId::A, 4096, 4096).expect("join cell runs");
    assert!(
        cell.chosen.ends_with("/partitioned"),
        "with a 4096-row build side far beyond a 32 KB L2, the planner should \
         choose the partitioned join from simulated memory-stall costs; \
         chose `{}`\nmeasured: {:?}",
        cell.chosen,
        cell.measured,
    );
    assert!(
        cell.ratio() <= 1.15,
        "planner pick `{}` is {:.3}x the actual best `{}`",
        cell.chosen,
        cell.ratio(),
        cell.best,
    );
}

//! Validating the paper's measurement methodology itself: the Table 4.2
//! count×penalty reconstruction (which is all the real hardware offered)
//! against the simulator's exact ledger (which no real hardware offers).

use wdtg_core::methodology::{measure_query, measured_latency, Methodology};
use wdtg_emon::{required_events, EventSpec, ModeSel};
use wdtg_memdb::SystemId;
use wdtg_sim::{CpuConfig, Event};
use wdtg_workloads::{MicroQuery, Scale};

#[test]
fn emon_reconstruction_tracks_ground_truth() {
    let m = Methodology {
        with_emon: true,
        ..Methodology::default()
    };
    let meas = measure_query(
        SystemId::C,
        MicroQuery::SequentialRangeSelection,
        0.1,
        Scale::tiny(),
        &CpuConfig::pentium_ii_xeon(),
        &m,
    )
    .expect("measurement runs");
    let est = meas.estimate.expect("emon requested");
    let truth = &meas.truth;

    // Total cycles from multiplexed pair-runs agree with the direct run.
    assert!(
        (est.cycles - truth.cycles).abs() / truth.cycles < 0.05,
        "emon cycles {} vs truth {}",
        est.cycles,
        truth.cycles
    );
    // T_C is definitionally identical (µops / width).
    assert!((est.tc - truth.tc).abs() / truth.tc < 0.05);
    // Count×penalty components are upper-bound-style estimates: within 2x
    // and never dramatically below the truth.
    for (name, e, t) in [
        ("TL2D", est.tl2d, truth.tl2d),
        ("TB", est.tb, truth.tb),
        ("TL1I", est.tl1i, truth.tl1i),
    ] {
        if t > 1000.0 {
            assert!(
                e > t * 0.5 && e < t * 2.5,
                "{name}: est {e:.0} vs truth {t:.0}"
            );
        }
    }
    // The overlap the paper could not measure is reconstructable here and
    // must be a small fraction of execution (the workload is latency-bound,
    // §4.3).
    assert!(est.tovl() >= 0.0);
    assert!(
        est.tovl() < 0.35 * est.cycles,
        "overlap {} vs cycles {}",
        est.tovl(),
        est.cycles
    );
}

#[test]
fn dtlb_stalls_are_not_measurable_like_the_real_tool() {
    // §4.3: "We were not able to measure T_DTLB, because the event code is
    // not available."
    assert!(EventSpec::new(Event::SimDtlbMiss, ModeSel::User).is_err());
    let specs = required_events(ModeSel::User);
    assert!(specs.iter().all(|s| s.event.has_hardware_code()));
}

#[test]
fn the_two_counter_restriction_forces_eight_runs() {
    // 16 events / 2 counters = 8 unit executions for one full breakdown.
    let specs = required_events(ModeSel::User);
    assert_eq!(wdtg_emon::plan(&specs).len(), 8);
}

#[test]
fn measured_memory_latency_matches_the_papers_band() {
    // §5.2.1: "Generally, a memory latency of 60-70 cycles was observed."
    let lat = measured_latency(&CpuConfig::pentium_ii_xeon());
    assert!((60.0..=70.0).contains(&lat), "measured latency {lat}");
}

#[test]
fn counter_file_covers_the_papers_74_event_types() {
    let hw = Event::ALL.iter().filter(|e| e.has_hardware_code()).count();
    assert_eq!(hw, 74, "§4.3: emon measured 74 event types");
}

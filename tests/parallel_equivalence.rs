//! Parallel-execution equivalence: the morsel-driven OS-thread executor
//! (`ShardedDatabase::run_parallel`) must be a pure *host-side* speedup.
//!
//! The contract under test: for a fixed morsel size, every worker count and
//! every steal schedule produces (a) bit-identical answers and (b)
//! bit-identical merged simulator snapshots (`merge_cores` wall/work views)
//! to the sequential run of the same morsel decomposition — and with one
//! whole-table morsel per shard, to the classic sequential executor
//! (`ShardedDatabase::run`) itself. Faults, budgets and cancellation must
//! surface the *same typed errors* under threads as sequentially.
//!
//! See `crates/memdb/src/parallel.rs` for the determinism argument these
//! tests hold the implementation to.

use wdtg_core::methodology::build_sharded_db_with_layout;
use wdtg_memdb::{
    AggSpec, Database, DbError, EngineProfile, ExecMode, FaultPlan, PageLayout, ParallelConfig,
    Query, QueryResult, ResourceBudget, Schema, ShardedDatabase, SystemId,
};
use wdtg_sim::{CoreMerge, CpuConfig, InterruptCfg};
use wdtg_workloads::{micro, MicroQuery, Scale};

fn cfg() -> CpuConfig {
    CpuConfig::pentium_ii_xeon()
}

fn build(query: MicroQuery, layout: PageLayout, shards: usize) -> ShardedDatabase {
    build_sharded_db_with_layout(
        EngineProfile::system(SystemId::C),
        Scale::tiny(),
        query,
        &cfg(),
        layout,
        shards,
    )
    .expect("sharded build")
}

fn pcfg(workers: usize, morsel_rows: u32, seed: u64) -> ParallelConfig {
    ParallelConfig::default()
        .with_workers(workers)
        .with_morsel_rows(morsel_rows)
        .with_steal_seed(seed)
}

/// One warmed, measured parallel run: (answer, merged counter delta).
fn measure(db: &mut ShardedDatabase, q: &Query, pc: &ParallelConfig) -> (QueryResult, CoreMerge) {
    db.run_parallel(q, pc).expect("warm-up run");
    let before = db.snapshots();
    let got = db.run_parallel(q, pc).expect("measured run");
    (got, db.merged_delta(&before))
}

fn assert_same(
    label: &str,
    (base_ans, base_merge): &(QueryResult, CoreMerge),
    (got_ans, got_merge): &(QueryResult, CoreMerge),
) {
    assert_eq!(
        base_ans.rows, got_ans.rows,
        "{label}: row count diverged from sequential"
    );
    assert_eq!(
        base_ans.value.to_bits(),
        got_ans.value.to_bits(),
        "{label}: answer must be bit-identical to sequential, not merely close"
    );
    assert_eq!(
        base_merge, got_merge,
        "{label}: merged snapshot must be bit-identical to sequential"
    );
}

/// The tentpole property: across exec modes × layouts, every worker count
/// in {2, 4, 8} reproduces the 1-worker run of the same morsel
/// decomposition — answers and merged counters, bit for bit.
#[test]
fn parallel_equals_sequential_across_modes_layouts_and_workers() {
    let q = micro::query(Scale::tiny(), MicroQuery::SequentialRangeSelection, 0.1);
    for mode in [ExecMode::Row, ExecMode::Batch] {
        for layout in PageLayout::ALL {
            let baseline = {
                let mut db = build(MicroQuery::SequentialRangeSelection, layout, 4);
                db.set_exec_mode(mode);
                measure(&mut db, &q, &pcfg(1, 64, 0))
            };
            for workers in [2usize, 4, 8] {
                let mut db = build(MicroQuery::SequentialRangeSelection, layout, 4);
                db.set_exec_mode(mode);
                let got = measure(&mut db, &q, &pcfg(workers, 64, workers as u64));
                assert_same(
                    &format!("{mode:?} {layout:?} x4 shards, {workers} workers"),
                    &baseline,
                    &got,
                );
            }
        }
    }
}

/// Morsel sizes {1, 64, 1024, whole-table} rows: each decomposition is
/// reproduced bit-identically by the threaded pool, at several shard
/// counts; answers are additionally identical *across* morsel sizes
/// (partials merge exactly). The whole-table decomposition also matches
/// the classic sequential executor's answer.
#[test]
fn morsel_size_grid_matches_sequential_at_all_shard_counts() {
    let q = micro::query(Scale::tiny(), MicroQuery::SequentialRangeSelection, 0.1);
    for shards in [2usize, 4] {
        let mut answer_across_morsels: Option<QueryResult> = None;
        for morsel_rows in [1u32, 64, 1024, u32::MAX] {
            let baseline = {
                let mut db = build(
                    MicroQuery::SequentialRangeSelection,
                    PageLayout::Nsm,
                    shards,
                );
                measure(&mut db, &q, &pcfg(1, morsel_rows, 0))
            };
            let got = {
                let mut db = build(
                    MicroQuery::SequentialRangeSelection,
                    PageLayout::Nsm,
                    shards,
                );
                measure(&mut db, &q, &pcfg(4, morsel_rows, 17))
            };
            assert_same(
                &format!("x{shards} shards, morsel {morsel_rows} rows"),
                &baseline,
                &got,
            );
            match &answer_across_morsels {
                None => answer_across_morsels = Some(got.0),
                Some(a) => {
                    assert_eq!(a.rows, got.0.rows);
                    assert_eq!(
                        a.value.to_bits(),
                        got.0.value.to_bits(),
                        "x{shards}: answers must not depend on morsel size"
                    );
                }
            }
        }
        // One whole-table morsel per shard reproduces the classic
        // sequential executor exactly — same answer, same counters.
        let legacy = {
            let mut db = build(
                MicroQuery::SequentialRangeSelection,
                PageLayout::Nsm,
                shards,
            );
            db.run(&q).expect("warm-up");
            let before = db.snapshots();
            let got = db.run(&q).expect("measured");
            (got, db.merged_delta(&before))
        };
        let whole = {
            let mut db = build(
                MicroQuery::SequentialRangeSelection,
                PageLayout::Nsm,
                shards,
            );
            measure(&mut db, &q, &pcfg(4, u32::MAX, 3))
        };
        assert_same(
            &format!("x{shards} shards, whole-table morsel vs ShardedDatabase::run"),
            &legacy,
            &whole,
        );
    }
}

/// The seeded-schedule stress test: permuting the work-stealing deal and
/// victim order (8 shards chasing 3 workers — always-stealing pressure)
/// must not move a single counter bit.
#[test]
fn steal_schedule_permutations_keep_merged_counters_bit_identical() {
    let q = micro::query(Scale::tiny(), MicroQuery::SequentialRangeSelection, 0.1);
    let mut baseline: Option<(QueryResult, CoreMerge)> = None;
    for seed in 0..8u64 {
        let mut db = build(MicroQuery::SequentialRangeSelection, PageLayout::Nsm, 8);
        let got = measure(&mut db, &q, &pcfg(3, 256, seed));
        match &baseline {
            None => baseline = Some(got),
            Some(b) => assert_same(&format!("steal seed {seed}"), b, &got),
        }
    }
}

/// Non-morselizable plans ride the same pool: the co-partitioned join and
/// the indexed range selection each run as one whole-range morsel per
/// shard and still reproduce the sequential run bit-identically.
#[test]
fn join_and_index_plans_match_sequential_under_threads() {
    for query in [
        MicroQuery::SequentialJoin,
        MicroQuery::IndexedRangeSelection,
    ] {
        let q = micro::query(Scale::tiny(), query, 0.1);
        let baseline = {
            let mut db = build(query, PageLayout::Nsm, 4);
            measure(&mut db, &q, &pcfg(1, 1024, 0))
        };
        let got = {
            let mut db = build(query, PageLayout::Nsm, 4);
            measure(&mut db, &q, &pcfg(8, 1024, 5))
        };
        assert_same(&format!("{query:?} under 8 workers"), &baseline, &got);
    }
}

/// Grouped aggregation through the pool: per-key exact partials must merge
/// to the same ascending-key float vector the sequential router produces.
#[test]
fn grouped_aggregation_matches_sequential_under_threads() {
    let agg = AggSpec::avg("a3");
    let grouped = |workers: usize, morsel: u32| {
        let mut db = build(MicroQuery::SequentialRangeSelection, PageLayout::Nsm, 4);
        db.run_grouped_parallel("R", "a2", None, &agg, &pcfg(workers, morsel, 11))
            .expect("grouped run")
    };
    let sequential = {
        let mut db = build(MicroQuery::SequentialRangeSelection, PageLayout::Nsm, 4);
        db.run_grouped("R", "a2", None, &agg).expect("grouped run")
    };
    for workers in [1usize, 2, 8] {
        let got = grouped(workers, 512);
        assert_eq!(
            sequential.len(),
            got.len(),
            "{workers} workers: group count diverged"
        );
        for ((ek, ev), (gk, gv)) in sequential.iter().zip(&got) {
            assert_eq!(ek, gk, "{workers} workers: group keys diverged");
            assert_eq!(
                ev.to_bits(),
                gv.to_bits(),
                "{workers} workers: group {ek} value must be bit-identical"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Morsel-boundary edge cases (satellite): empty tables, single-row morsels,
// morsel size > table size, worker count > morsel count.
// ---------------------------------------------------------------------------

/// A hand-built sharded database over a table of `rows` rows (shard key
/// `a1`, dense), small enough that edge decompositions are exact.
fn tiny_sharded(rows: i32, shards: usize) -> ShardedDatabase {
    let mut db = Database::new(
        EngineProfile::system(SystemId::C),
        cfg().with_interrupts(InterruptCfg::disabled()),
    );
    db.ctx.instrument = false;
    db.create_table("T", Schema::paper_relation(20)).unwrap();
    db.load_rows("T", (0..rows).map(|i| vec![i, i % 7 + 1, i * 3, 0, 0]))
        .unwrap();
    db.set_shard_key("T", "a1").unwrap();
    let mut sharded = db.shard(shards).unwrap();
    sharded.set_instrument(true);
    sharded
}

#[test]
fn morsel_boundary_edge_cases_produce_identical_answers_and_snapshots() {
    let q = Query::SelectAgg {
        table: "T".into(),
        predicate: None,
        agg: AggSpec::sum("a3"),
    };
    // (rows, shards, morsel_rows, workers) corner grid:
    //  - empty table (morsels over zero pages)
    //  - single-row morsels (one page per morsel, maximal morsel count)
    //  - morsel size > table size (one whole-table morsel per shard)
    //  - worker count > morsel count (workers idle at the deque)
    let corners: [(i32, usize, u32, usize); 4] = [
        (0, 2, 1, 8),
        (500, 2, 1, 8),
        (37, 2, u32::MAX, 4),
        (12, 3, u32::MAX, 8),
    ];
    for (rows, shards, morsel_rows, workers) in corners {
        let baseline = {
            let mut db = tiny_sharded(rows, shards);
            measure(&mut db, &q, &pcfg(1, morsel_rows, 0))
        };
        let got = {
            let mut db = tiny_sharded(rows, shards);
            measure(&mut db, &q, &pcfg(workers, morsel_rows, 23))
        };
        assert_same(
            &format!("{rows} rows x{shards} shards, morsel {morsel_rows}, {workers} workers"),
            &baseline,
            &got,
        );
        let expected_sum: i64 = (0..rows).map(|i| i as i64 * 3).sum();
        assert_eq!(got.0.rows, rows as u64);
        assert_eq!(
            got.0.value, expected_sum as f64,
            "exact sum over {rows} rows"
        );
    }
}

// ---------------------------------------------------------------------------
// Chaos under threads (satellite): faults, budgets and cancellation must
// surface the same typed errors across worker counts.
// ---------------------------------------------------------------------------

/// Budget exhaustion: a cycle budget far below the scan's cost must surface
/// the same typed error (same shard, same resource) at every worker count.
#[test]
fn budget_exhaustion_surfaces_identical_typed_errors_across_worker_counts() {
    // Predicate-free so every row reaches the aggregator's checkpoint.
    let q = Query::SelectAgg {
        table: "R".into(),
        predicate: None,
        agg: AggSpec::avg("a3"),
    };
    let run = |workers: usize| -> Result<QueryResult, DbError> {
        let mut db = build(MicroQuery::SequentialRangeSelection, PageLayout::Nsm, 4);
        db.set_budget(ResourceBudget::unlimited().with_max_cycles(10_000));
        db.run_parallel(&q, &pcfg(workers, 256, workers as u64))
    };
    let baseline = run(1);
    let err = baseline
        .as_ref()
        .expect_err("10k cycles cannot cover the scan");
    assert!(
        matches!(
            err,
            DbError::BudgetExceeded {
                resource: "cycles",
                ..
            }
        ),
        "expected a cycle-budget breach, got {err:?}"
    );
    for workers in [2usize, 8] {
        assert_eq!(
            baseline,
            run(workers),
            "{workers} workers: budget breach must be schedule-independent"
        );
    }
}

/// Deterministic fault plans: the retry/backoff dance happens on each
/// shard's own core, so outcomes — including which typed error survives
/// retries, and every merged counter — are identical across worker counts.
#[test]
fn injected_faults_surface_identical_outcomes_across_worker_counts() {
    let q = micro::query(Scale::tiny(), MicroQuery::SequentialRangeSelection, 0.1);
    for fault_seed in [3u64, 99] {
        let run = |workers: usize| {
            let mut db = build(MicroQuery::SequentialRangeSelection, PageLayout::Nsm, 4);
            db.set_fault_plan(FaultPlan::uniform(fault_seed, 0.01));
            let before = db.snapshots();
            let r = db.run_parallel(&q, &pcfg(workers, 512, workers as u64));
            (r, db.merged_delta(&before), db.router_stats())
        };
        let (base_r, base_m, base_s) = run(1);
        for workers in [2usize, 8] {
            let (r, m, s) = run(workers);
            assert_eq!(
                base_r, r,
                "seed {fault_seed}, {workers} workers: outcome diverged"
            );
            assert_eq!(
                base_m, m,
                "seed {fault_seed}, {workers} workers: counters diverged"
            );
            assert_eq!(
                base_s, s,
                "seed {fault_seed}, {workers} workers: router stats diverged"
            );
        }
    }
}

/// Concurrent cancellation (satellite): a token flipped from another OS
/// thread mid-query must surface `Cancelled` — and only `Cancelled` — at
/// every worker count, with correct answers before and after.
#[test]
fn cancellation_from_another_thread_surfaces_cancelled_across_worker_counts() {
    let q = micro::query(Scale::tiny(), MicroQuery::SequentialRangeSelection, 0.1);
    for workers in [1usize, 2, 8] {
        let mut db = build(MicroQuery::SequentialRangeSelection, PageLayout::Nsm, 4);
        let pc = pcfg(workers, 64, 0);
        let expected = db.run_parallel(&q, &pc).expect("fault-free answer");

        // Pre-cancelled: refused outright.
        let token = db.cancel_token();
        token.cancel();
        assert_eq!(db.run_parallel(&q, &pc), Err(DbError::Cancelled));
        token.clear();

        // Flipped mid-flight from another thread: every attempt either
        // completes with the exact answer or fails with `Cancelled`; once
        // the flag is set a subsequent attempt *must* report `Cancelled`.
        let cancelled_seen = std::thread::scope(|scope| {
            let token = db.cancel_token();
            scope.spawn(move || {
                std::thread::sleep(std::time::Duration::from_micros(300));
                token.cancel();
            });
            let mut cancelled = false;
            for _ in 0..50 {
                match db.run_parallel(&q, &pc) {
                    Ok(got) => {
                        assert_eq!(got.rows, expected.rows, "{workers} workers");
                        assert_eq!(
                            got.value.to_bits(),
                            expected.value.to_bits(),
                            "{workers} workers: a completed run must be exact"
                        );
                    }
                    Err(DbError::Cancelled) => {
                        cancelled = true;
                        break;
                    }
                    Err(other) => panic!("{workers} workers: unexpected error {other:?}"),
                }
            }
            cancelled
        });
        assert!(
            cancelled_seen,
            "{workers} workers: the cancel flag was set, so a run must observe it"
        );

        // Cleared again: the database is fully usable.
        db.cancel_token().clear();
        let after = db.run_parallel(&q, &pc).expect("post-clear answer");
        assert_eq!(after.rows, expected.rows);
        assert_eq!(after.value.to_bits(), expected.value.to_bits());
    }
}

/// A pending cancellation must imply *zero* mutation: a broadcast update
/// refused with `Cancelled` leaves every shard's data bit-identical, at
/// every worker count.
#[test]
fn cancelled_mutation_applies_nothing_across_worker_counts() {
    let sum_q = Query::SelectAgg {
        table: "R".into(),
        predicate: None,
        agg: AggSpec::sum("a3"),
    };
    let update = Query::UpdateAdd {
        table: "R".into(),
        key_col: "a2".into(),
        key: 5,
        set_col: "a3".into(),
        delta: 7,
    };
    for workers in [1usize, 2, 8] {
        // IndexedRangeSelection builds the a2 index the update needs.
        let mut db = build(MicroQuery::IndexedRangeSelection, PageLayout::Nsm, 4);
        let pc = pcfg(workers, 1024, 0);
        let before = db.run_parallel(&sum_q, &pc).expect("baseline sum");

        let token = db.cancel_token();
        token.cancel();
        assert_eq!(
            db.run_parallel(&update, &pc),
            Err(DbError::Cancelled),
            "{workers} workers: pending cancellation must refuse the update"
        );
        let after_cancel = db
            .run_parallel(&sum_q, &{
                token.clear();
                pc
            })
            .expect("sum after refused update");
        assert_eq!(
            before.value.to_bits(),
            after_cancel.value.to_bits(),
            "{workers} workers: a Cancelled update must mutate nothing"
        );

        // And with the token cleared the same update applies exactly.
        let applied = db.run_parallel(&update, &pc).expect("update applies");
        assert!(applied.rows > 0, "key 5 must match rows at tiny scale");
        let after_apply = db.run_parallel(&sum_q, &pc).expect("sum after update");
        assert_eq!(
            after_apply.value as i64,
            before.value as i64 + 7 * applied.rows as i64,
            "{workers} workers: the update's effect must be exact"
        );
    }
}

//! Sharded-execution equivalence: the same answers at every shard count,
//! and bit-identical merged simulator snapshots across repeated builds.
//!
//! The contract under test is the one `BENCH_scale.json` advertises:
//! hash-partitioning a relation across N cores changes *where* the work
//! runs, never *what* the query answers — the partial-aggregate merge is
//! integer-exact, so even the floating-point AVG is bit-identical — and the
//! whole sharded machine stays as deterministic as the single-core
//! simulator (`tests/determinism.rs`'s bar, extended to the merged view).

use wdtg_core::methodology::build_sharded_db_with_layout;
use wdtg_memdb::{EngineProfile, ExecMode, PageLayout, SystemId};
use wdtg_sim::{merge_cores, CpuConfig, Snapshot};
use wdtg_workloads::{micro, MicroQuery, Scale};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn cfg() -> CpuConfig {
    CpuConfig::pentium_ii_xeon()
}

#[test]
fn answers_are_identical_across_shard_counts_modes_and_layouts() {
    let scale = Scale::tiny();
    for query in MicroQuery::ALL {
        for mode in [ExecMode::Row, ExecMode::Batch] {
            for layout in PageLayout::ALL {
                let q = micro::query(scale, query, 0.1);
                let mut expected = None;
                for shards in SHARD_COUNTS {
                    let mut db = build_sharded_db_with_layout(
                        EngineProfile::system(SystemId::C),
                        scale,
                        query,
                        &cfg(),
                        layout,
                        shards,
                    )
                    .expect("sharded build");
                    db.set_exec_mode(mode);
                    let got = db.run(&q).expect("sharded run");
                    match expected {
                        None => expected = Some(got),
                        Some(e) => {
                            assert_eq!(
                                e.rows, got.rows,
                                "{query:?} {mode:?} {layout:?} x{shards}: rows diverged"
                            );
                            assert_eq!(
                                e.value, got.value,
                                "{query:?} {mode:?} {layout:?} x{shards}: \
                                 value must be bit-identical, not merely close"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn merged_snapshots_are_bit_identical_across_repeated_builds() {
    // Build the same sharded database twice from scratch, run the same
    // query, and demand the *merged* measurement (summed counters + ledger,
    // max-core wall clock) reproduce exactly — per shard count.
    let scale = Scale::tiny();
    for shards in [1usize, 4, 8] {
        let measure = || {
            let mut db = build_sharded_db_with_layout(
                EngineProfile::system(SystemId::B),
                scale,
                MicroQuery::SequentialRangeSelection,
                &cfg(),
                PageLayout::Nsm,
                shards,
            )
            .expect("sharded build");
            let q = micro::query(scale, MicroQuery::SequentialRangeSelection, 0.1);
            db.run(&q).expect("warm-up");
            let before = db.snapshots();
            db.run(&q).expect("measured run");
            db.merged_delta(&before)
        };
        let a = measure();
        let b = measure();
        assert_eq!(
            a, b,
            "{shards} shards: merged snapshots must be bit-identical across repeats"
        );
        assert_eq!(a.cores, shards);
        assert!(a.wall_cycles > 0.0);
        assert!(
            a.total.cycles >= a.wall_cycles,
            "summed work can never undercut the slowest core"
        );
    }
}

#[test]
fn per_shard_deltas_merge_consistently() {
    // The merged view must be exactly the fold of the per-shard deltas —
    // no hidden cross-shard state.
    let scale = Scale::tiny();
    let mut db = build_sharded_db_with_layout(
        EngineProfile::system(SystemId::D),
        scale,
        MicroQuery::SequentialRangeSelection,
        &cfg(),
        PageLayout::Nsm,
        4,
    )
    .expect("sharded build");
    let q = micro::query(scale, MicroQuery::SequentialRangeSelection, 0.1);
    db.run(&q).expect("warm-up");
    let before = db.snapshots();
    db.run(&q).expect("measured run");
    let merged = db.merged_delta(&before);

    let deltas: Vec<Snapshot> = db
        .snapshots()
        .iter()
        .zip(&before)
        .map(|(now, b)| now.delta(b))
        .collect();
    assert_eq!(merged, merge_cores(&deltas));
    let wall = deltas.iter().map(|d| d.cycles).fold(0.0, f64::max);
    assert_eq!(merged.wall_cycles, wall);
    let sum: f64 = deltas.iter().map(|d| d.cycles).sum();
    assert!((merged.total.cycles - sum).abs() < 1e-9);
}

#[test]
fn sharded_wall_clock_beats_single_core_on_the_sequential_scan() {
    // Even at test scale the scan must parallelize: 4 shards' wall clock
    // (slowest core) well under the 1-shard run's.
    let scale = Scale::tiny();
    let run = |shards: usize| {
        let mut db = build_sharded_db_with_layout(
            EngineProfile::system(SystemId::C),
            scale,
            MicroQuery::SequentialRangeSelection,
            &cfg(),
            PageLayout::Nsm,
            shards,
        )
        .expect("sharded build");
        let q = micro::query(scale, MicroQuery::SequentialRangeSelection, 0.1);
        db.run(&q).expect("warm-up");
        let before = db.snapshots();
        db.run(&q).expect("measured run");
        db.merged_delta(&before).wall_cycles
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four < one / 2.0,
        "4 shards must at least halve the scan's wall clock (1-shard {one:.0}, 4-shard {four:.0})"
    );
}
